#include "overlay/unstructured/replication.h"

#include <algorithm>
#include <cassert>

namespace pdht::overlay {

ReplicaPlacement::ReplicaPlacement(uint32_t num_peers, uint32_t repl, Rng rng)
    : num_peers_(num_peers), repl_(repl), rng_(rng), held_(num_peers) {
  assert(num_peers >= 1);
  assert(repl >= 1);
}

void ReplicaPlacement::PlaceKey(uint64_t key) {
  if (replicas_.count(key)) return;
  uint32_t want = std::min(repl_, num_peers_);
  std::vector<net::PeerId> chosen;
  chosen.reserve(want);
  while (chosen.size() < want) {
    net::PeerId p = static_cast<net::PeerId>(rng_.UniformU64(num_peers_));
    if (std::find(chosen.begin(), chosen.end(), p) == chosen.end()) {
      chosen.push_back(p);
      std::vector<uint64_t>& held = held_[p];
      held.insert(std::lower_bound(held.begin(), held.end(), key), key);
    }
  }
  replicas_.emplace(key, std::move(chosen));
}

void ReplicaPlacement::PlaceKeys(uint64_t n) {
  for (uint64_t k = 0; k < n; ++k) PlaceKey(k);
}

bool ReplicaPlacement::IsPlaced(uint64_t key) const {
  return replicas_.count(key) > 0;
}

bool ReplicaPlacement::PeerHoldsKey(net::PeerId peer, uint64_t key) const {
  if (peer >= held_.size()) return false;
  const std::vector<uint64_t>& held = held_[peer];
  return std::binary_search(held.begin(), held.end(), key);
}

const std::vector<net::PeerId>& ReplicaPlacement::ReplicasOf(
    uint64_t key) const {
  auto it = replicas_.find(key);
  return it == replicas_.end() ? empty_ : it->second;
}

void ReplicaPlacement::RemoveKey(uint64_t key) {
  auto it = replicas_.find(key);
  if (it == replicas_.end()) return;
  for (net::PeerId p : it->second) {
    std::vector<uint64_t>& held = held_[p];
    auto kit = std::lower_bound(held.begin(), held.end(), key);
    if (kit != held.end() && *kit == key) held.erase(kit);
  }
  replicas_.erase(it);
}

double ReplicaPlacement::OnlineReplicaFraction(
    uint64_t key, const std::vector<bool>& alive) const {
  const auto& reps = ReplicasOf(key);
  if (reps.empty()) return 0.0;
  uint32_t online = 0;
  for (net::PeerId p : reps) {
    if (p < alive.size() && alive[p]) ++online;
  }
  return static_cast<double>(online) / static_cast<double>(reps.size());
}

}  // namespace pdht::overlay
