// Random content replication.
//
// "we replicate keys with a certain factor at random peers" (Section 3.1).
// ReplicaPlacement assigns every key to `repl` distinct peers chosen
// uniformly at random, and answers the content-oracle question "does peer p
// hold key k?" that the unstructured search protocols need.  Placement is
// independent of the DHT key space (different hash family).

#ifndef PDHT_OVERLAY_UNSTRUCTURED_REPLICATION_H_
#define PDHT_OVERLAY_UNSTRUCTURED_REPLICATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/message.h"
#include "util/rng.h"

namespace pdht::overlay {

class ReplicaPlacement {
 public:
  /// `num_peers` peers available for placement; each key gets min(repl,
  /// num_peers) distinct replicas.
  ReplicaPlacement(uint32_t num_peers, uint32_t repl, Rng rng);

  /// Places `key` (idempotent: re-placing keeps the existing placement).
  void PlaceKey(uint64_t key);

  /// Places keys 0..n-1 densely (the common bulk setup).
  void PlaceKeys(uint64_t n);

  bool IsPlaced(uint64_t key) const;
  bool PeerHoldsKey(net::PeerId peer, uint64_t key) const;
  const std::vector<net::PeerId>& ReplicasOf(uint64_t key) const;

  /// Removes a key entirely (content deleted from the network).
  void RemoveKey(uint64_t key);

  uint32_t repl() const { return repl_; }
  uint32_t num_peers() const { return num_peers_; }
  size_t num_keys() const { return replicas_.size(); }

  /// Fraction of `key`'s replicas that are online according to `alive`.
  double OnlineReplicaFraction(uint64_t key,
                               const std::vector<bool>& alive) const;

 private:
  uint32_t num_peers_;
  uint32_t repl_;
  Rng rng_;
  std::unordered_map<uint64_t, std::vector<net::PeerId>> replicas_;
  // peer -> sorted keys.  PeerHoldsKey is the walk search's content
  // oracle, probed once per walker step, and a binary search over the
  // ~keys*repl/numPeers contiguous keys a peer holds beats a hash-set
  // probe there; placement mutations are rare (bulk setup + occasional
  // RemoveKey).
  std::vector<std::vector<uint64_t>> held_;
  std::vector<net::PeerId> empty_;
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_UNSTRUCTURED_REPLICATION_H_
