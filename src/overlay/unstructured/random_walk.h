// Multiple-random-walk search [LvCa02].
//
// "the Gnutella flooding-based query algorithm is not optimal even for
// unstructured networks.  We therefore assume that a search algorithm is
// used that consumes less network traffic, such as multiple random walks"
// (Section 3.1).  The originator launches `num_walkers` walkers; each
// walker forwards the query to one random neighbor per step and "checks"
// back with the originator every `check_interval` steps, terminating when
// another walker already succeeded.  With random replication at factor
// repl, the expected number of walker steps to a hit is ~ numPeers/repl,
// and revisits/cross-walker overlap contribute the duplication factor dup
// of Eq. 6.
//
// To preserve the paper's assumption that an existing key is always found,
// a search whose walkers all expire falls back to flooding (counted; rare
// when walk budgets are sized sensibly).

#ifndef PDHT_OVERLAY_UNSTRUCTURED_RANDOM_WALK_H_
#define PDHT_OVERLAY_UNSTRUCTURED_RANDOM_WALK_H_

#include <cstdint>

#include "overlay/unstructured/flooding.h"
#include "overlay/unstructured/random_graph.h"
#include "util/rng.h"

namespace pdht::overlay {

struct RandomWalkConfig {
  uint32_t num_walkers = 16;       ///< [LvCa02] recommends 16-64 walkers.
  uint32_t max_steps_per_walker = 4096;  ///< per-walker step budget.
  uint32_t check_interval = 4;     ///< steps between originator checks.
  bool flood_fallback = true;      ///< guarantee success for existing keys.
};

struct WalkResult {
  bool found = false;
  net::PeerId found_at = net::kInvalidPeer;
  uint64_t messages = 0;       ///< walk + check + response + fallback msgs.
  uint64_t walk_steps = 0;     ///< pure walker forwards.
  uint32_t distinct_peers = 0; ///< distinct peers visited by any walker.
  bool used_flood_fallback = false;
};

class RandomWalkSearch {
 public:
  RandomWalkSearch(const RandomGraph* graph, net::Network* network,
                   ContentOracle oracle, RandomWalkConfig config, Rng rng);

  WalkResult Search(net::PeerId origin, uint64_t key) {
    return Search(origin, key, rng_);
  }

  /// Same walk, but drawing every random step from the caller's `rng`
  /// instead of the searcher's own stream.  The sharded round engine runs
  /// one searcher per worker slot and hands each query task its own
  /// derived Rng, so search outcomes depend only on the task -- not on
  /// which worker ran it.
  WalkResult Search(net::PeerId origin, uint64_t key, Rng& rng);

  const RandomWalkConfig& config() const { return config_; }

 private:
  struct Walker {
    net::PeerId at;
    bool active;
  };

  const RandomGraph* graph_;
  net::Network* network_;
  ContentOracle oracle_;
  RandomWalkConfig config_;
  Rng rng_;
  FloodSearch flood_;
  uint64_t next_request_id_ = 1;
  // Search scratch state, reused so the per-query hot path does not
  // allocate: walker slots plus an epoch-stamped visited mark per peer
  // (visit_mark_[p] == visit_epoch_ <=> p visited by the current search),
  // replacing a per-call unordered_set.
  std::vector<Walker> walkers_;
  std::vector<uint64_t> visit_mark_;
  uint64_t visit_epoch_ = 0;
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_UNSTRUCTURED_RANDOM_WALK_H_
