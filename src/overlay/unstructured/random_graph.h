// Gnutella-like random overlay topology.
//
// "We assume that the unstructured network has a Gnutella-like topology,
// where each peer has a few open connections to other peers" (Section 3.1).
// The graph is built as a random spanning tree (guaranteeing connectivity)
// plus uniformly random extra edges until the target average degree is
// reached -- the standard construction for Gnutella-style overlays in
// simulation studies [LvCa02].

#ifndef PDHT_OVERLAY_UNSTRUCTURED_RANDOM_GRAPH_H_
#define PDHT_OVERLAY_UNSTRUCTURED_RANDOM_GRAPH_H_

#include <cstdint>
#include <vector>

#include "net/message.h"
#include "util/rng.h"

namespace pdht::overlay {

class RandomGraph {
 public:
  /// Builds a connected graph over `n` nodes with average degree close to
  /// `avg_degree` (>= 2).  Deterministic given `rng`'s state.
  RandomGraph(uint32_t n, double avg_degree, Rng* rng);

  uint32_t num_nodes() const { return static_cast<uint32_t>(adj_.size()); }
  uint64_t num_edges() const { return num_edges_; }
  double AverageDegree() const;

  const std::vector<net::PeerId>& Neighbors(net::PeerId node) const {
    return adj_[node];
  }

  bool HasEdge(net::PeerId a, net::PeerId b) const;

  /// True if the graph restricted to `alive` nodes is connected (BFS from
  /// the first alive node).  With no filter, checks the whole graph.
  bool IsConnected() const;
  bool IsConnectedAmong(const std::vector<bool>& alive) const;

  /// BFS hop distance between two nodes, or UINT32_MAX if unreachable.
  uint32_t Distance(net::PeerId a, net::PeerId b) const;

 private:
  void AddEdge(net::PeerId a, net::PeerId b);

  std::vector<std::vector<net::PeerId>> adj_;
  uint64_t num_edges_ = 0;
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_UNSTRUCTURED_RANDOM_GRAPH_H_
