// Gnutella-style flooding search.
//
// The baseline search mechanism of unstructured networks: the originator
// forwards the query to all neighbors, which forward to all their
// neighbors, up to a hop TTL.  Peers remember seen request ids and drop
// duplicates, but the duplicate *transmissions* still cross the wire and
// are counted -- this is exactly the `dup` factor of Eq. 6.
//
// FloodSearch is used (a) as the paper's "broadcast search" worst case and
// (b) as the guaranteed-coverage fallback behind random walks, preserving
// the paper's assumption that "the search algorithm in the unstructured
// network finds any key if it exists in the network".

#ifndef PDHT_OVERLAY_UNSTRUCTURED_FLOODING_H_
#define PDHT_OVERLAY_UNSTRUCTURED_FLOODING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.h"
#include "overlay/unstructured/random_graph.h"

namespace pdht::overlay {

/// Content oracle: does `peer` currently hold `key`?
using ContentOracle = std::function<bool(net::PeerId, uint64_t)>;

struct FloodResult {
  bool found = false;
  net::PeerId found_at = net::kInvalidPeer;
  uint32_t peers_reached = 0;   ///< distinct peers that processed the query.
  uint64_t messages = 0;        ///< query transmissions (incl. duplicates).
  uint32_t hops_to_hit = 0;     ///< hop count of the first hit.
};

class FloodSearch {
 public:
  /// `graph`, `network` and `oracle` must outlive the searcher.
  FloodSearch(const RandomGraph* graph, net::Network* network,
              ContentOracle oracle);

  /// Floods from `origin` with the given hop TTL.  Offline peers neither
  /// process nor forward.  Every transmission is counted on the network as
  /// kFloodQuery; a hit additionally sends one kQueryResponse.
  FloodResult Search(net::PeerId origin, uint64_t key, uint32_t ttl_hops);

 private:
  const RandomGraph* graph_;
  net::Network* network_;
  ContentOracle oracle_;
  uint64_t next_request_id_ = 1;
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_UNSTRUCTURED_FLOODING_H_
