#include "overlay/unstructured/random_walk.h"

#include <vector>

namespace pdht::overlay {

RandomWalkSearch::RandomWalkSearch(const RandomGraph* graph,
                                   net::Network* network,
                                   ContentOracle oracle,
                                   RandomWalkConfig config, Rng rng)
    : graph_(graph),
      network_(network),
      oracle_(std::move(oracle)),
      config_(config),
      rng_(rng),
      flood_(graph, network, oracle_) {}

WalkResult RandomWalkSearch::Search(net::PeerId origin, uint64_t key,
                                    Rng& rng) {
  WalkResult result;
  uint64_t request_id = next_request_id_++;
  if (!network_->IsOnline(origin)) return result;

  if (oracle_(origin, key)) {
    result.found = true;
    result.found_at = origin;
    result.distinct_peers = 1;
    return result;
  }

  // Walkers advance in lockstep (step-synchronous), which lets a success be
  // noticed by the others at their next originator check, as in [LvCa02].
  walkers_.assign(config_.num_walkers, {origin, true});
  std::vector<Walker>& walkers = walkers_;
  if (visit_mark_.size() < graph_->num_nodes()) {
    visit_mark_.resize(graph_->num_nodes(), 0);
  }
  ++visit_epoch_;
  uint32_t distinct = 0;
  auto mark_visited = [this, &distinct](net::PeerId p) {
    if (p < visit_mark_.size() && visit_mark_[p] != visit_epoch_) {
      visit_mark_[p] = visit_epoch_;
      ++distinct;
    }
  };
  mark_visited(origin);
  bool success = false;

  for (uint32_t step = 0; step < config_.max_steps_per_walker && !success;
       ++step) {
    bool any_active = false;
    for (auto& w : walkers) {
      if (!w.active) continue;
      const auto& nbrs = graph_->Neighbors(w.at);
      if (nbrs.empty()) {
        w.active = false;
        continue;
      }
      net::PeerId next = nbrs[rng.UniformU64(nbrs.size())];
      net::Message m;
      m.type = net::MessageType::kWalkQuery;
      m.from = w.at;
      m.to = next;
      m.key = key;
      m.tag = request_id;
      bool delivered = network_->Send(m);
      ++result.messages;
      ++result.walk_steps;
      if (!delivered) {
        // Walker hit an offline neighbor; the message is lost and the
        // walker dies (the originator restarts walkers via checks in a
        // real deployment; our budgeted walkers + fallback bound the cost).
        w.active = false;
        continue;
      }
      w.at = next;
      mark_visited(next);
      if (oracle_(next, key)) {
        success = true;
        result.found = true;
        result.found_at = next;
        net::Message resp;
        resp.type = net::MessageType::kQueryResponse;
        resp.from = next;
        resp.to = origin;
        resp.key = key;
        resp.tag = request_id;
        network_->Send(resp);
        ++result.messages;
        break;
      }
      any_active = true;
      // Periodic check with the originator ("checking" in [LvCa02]).
      if (config_.check_interval > 0 &&
          (step + 1) % config_.check_interval == 0) {
        net::Message chk;
        chk.type = net::MessageType::kWalkCheck;
        chk.from = w.at;
        chk.to = origin;
        chk.key = key;
        chk.tag = request_id;
        network_->Send(chk);
        ++result.messages;
      }
    }
    if (!any_active) break;
  }

  result.distinct_peers = distinct;
  if (!result.found && config_.flood_fallback) {
    result.used_flood_fallback = true;
    FloodResult fr = flood_.Search(origin, key,
                                   /*ttl_hops=*/graph_->num_nodes());
    result.messages += fr.messages;
    result.found = fr.found;
    result.found_at = fr.found_at;
  }
  return result;
}

}  // namespace pdht::overlay
