#include "overlay/structured_overlay.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "overlay/can/can.h"
#include "overlay/dht/chord.h"
#include "overlay/dht/kademlia.h"
#include "overlay/pgrid/pgrid.h"
#include "util/hash.h"

namespace pdht::overlay {

StructuredOverlay::StructuredOverlay(net::Network* network)
    : network_(network), driver_(network) {
  assert(network != nullptr);
}

LookupResult StructuredOverlay::Lookup(net::PeerId origin, uint64_t key) {
  return driver_.Route(*this, origin, key);
}

net::PeerId StructuredOverlay::RandomOnlineMember(Rng& rng) const {
  const std::vector<net::PeerId>& mem = members();
  if (mem.empty()) return net::kInvalidPeer;
  for (int attempt = 0; attempt < 64; ++attempt) {
    net::PeerId p = mem[rng.UniformU64(mem.size())];
    if (network_->IsOnline(p)) return p;
  }
  for (net::PeerId p : mem) {
    if (network_->IsOnline(p)) return p;
  }
  return net::kInvalidPeer;
}

void StructuredOverlay::ResponsiblePeersInto(
    uint64_t key, uint32_t count, std::vector<net::PeerId>* out) const {
  // "Index and content are replicated with the same factor" (Section 4)
  // and content replication is random.  The responsible member (the
  // lookup terminus) is replica 0 -- the insertion point -- and the
  // remaining count-1 replicas are hash-derived members, which spreads
  // the storage load uniformly.
  out->clear();
  const std::vector<net::PeerId>& mem = members();
  net::PeerId responsible = ResponsibleMember(key);
  if (responsible == net::kInvalidPeer || mem.empty()) return;
  uint32_t want = static_cast<uint32_t>(
      std::min<uint64_t>(count, mem.size()));
  out->reserve(want);
  out->push_back(responsible);
  uint64_t salt = 0;
  while (out->size() < want && salt < 16ull * want) {
    net::PeerId cand = mem[Mix64(HashCombine(key, ++salt)) % mem.size()];
    if (std::find(out->begin(), out->end(), cand) == out->end()) {
      out->push_back(cand);
    }
  }
}

namespace {

std::unique_ptr<StructuredOverlay> MakeChord(net::Network* network,
                                             const OverlayParams& /*params*/,
                                             Rng rng) {
  return std::make_unique<ChordOverlay>(network, rng);
}

std::unique_ptr<StructuredOverlay> MakePGrid(net::Network* network,
                                             const OverlayParams& params,
                                             Rng rng) {
  PGridConfig pc;
  pc.refs_per_level = 4;
  uint64_t population = std::max<uint64_t>(params.num_peers, 1);
  pc.max_leaf_peers = static_cast<uint32_t>(
      std::max<uint64_t>(1, std::min(params.repl, population)));
  return std::make_unique<PGridOverlay>(network, rng, pc);
}

std::unique_ptr<StructuredOverlay> MakeCan(net::Network* network,
                                           const OverlayParams& /*params*/,
                                           Rng rng) {
  return std::make_unique<CanOverlay>(network, rng);
}

std::unique_ptr<StructuredOverlay> MakeKademlia(net::Network* network,
                                                const OverlayParams& params,
                                                Rng rng) {
  return std::make_unique<KademliaOverlay>(
      network, rng, std::max<uint32_t>(1, params.kademlia_bucket_size),
      std::max<uint32_t>(1, params.kademlia_alpha));
}

/// Enum-keyed factory table.  A function-local static (not per-TU static
/// registrar objects) so registration survives static-library linking and
/// has no initialization-order hazards.
std::map<core::DhtBackend, OverlayFactory>& Registry() {
  static std::map<core::DhtBackend, OverlayFactory> registry = {
      {core::DhtBackend::kChord, &MakeChord},
      {core::DhtBackend::kPGrid, &MakePGrid},
      {core::DhtBackend::kCan, &MakeCan},
      {core::DhtBackend::kKademlia, &MakeKademlia},
  };
  return registry;
}

}  // namespace

bool RegisterOverlay(core::DhtBackend backend, OverlayFactory factory) {
  if (factory == nullptr) return false;
  return Registry().emplace(backend, factory).second;
}

bool IsRegisteredBackend(core::DhtBackend backend) {
  return Registry().count(backend) > 0;
}

std::vector<core::DhtBackend> RegisteredBackends() {
  std::vector<core::DhtBackend> out;
  out.reserve(Registry().size());
  for (const auto& [backend, factory] : Registry()) {
    (void)factory;
    out.push_back(backend);
  }
  return out;
}

std::unique_ptr<StructuredOverlay> MakeOverlay(core::DhtBackend backend,
                                               net::Network* network,
                                               const OverlayParams& params,
                                               Rng rng) {
  auto it = Registry().find(backend);
  if (it == Registry().end()) return nullptr;
  return it->second(network, params, rng);
}

std::unique_ptr<StructuredOverlay> MakeOverlay(const std::string& name,
                                               net::Network* network,
                                               const OverlayParams& params,
                                               Rng rng) {
  core::DhtBackend backend;
  if (!core::ParseDhtBackend(name, &backend)) return nullptr;
  return MakeOverlay(backend, network, params, rng);
}

}  // namespace pdht::overlay
