#include "overlay/can/can.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <functional>
#include <sstream>

#include "util/hash.h"

namespace pdht::overlay {

namespace {

/// Torus distance between coordinates a and b in [0, 1).
double TorusDist(double a, double b) {
  double d = std::abs(a - b);
  return std::min(d, 1.0 - d);
}

/// Distance from coordinate x to interval [lo, hi) on the torus.
double TorusDistToInterval(double x, double lo, double hi) {
  if (x >= lo && x < hi) return 0.0;
  return std::min(TorusDist(x, lo), TorusDist(x, hi));
}

/// 1-D intervals abut on the unit torus.
bool Abuts(double lo_a, double hi_a, double lo_b, double hi_b) {
  auto close = [](double u, double v) { return std::abs(u - v) < 1e-12; };
  if (close(hi_a, lo_b) || close(hi_b, lo_a)) return true;
  // Wrap-around adjacency at 0/1.
  if (close(hi_a, 1.0) && close(lo_b, 0.0)) return true;
  if (close(hi_b, 1.0) && close(lo_a, 0.0)) return true;
  return false;
}

/// 1-D intervals overlap (positively) -- used for the non-split dims.
bool Overlaps(double lo_a, double hi_a, double lo_b, double hi_b) {
  return lo_a < hi_b - 1e-12 && lo_b < hi_a - 1e-12;
}

}  // namespace

bool CanZone::Contains(const CanPoint& p) const {
  for (int d = 0; d < kCanDims; ++d) {
    if (p.x[d] < lo[d] || p.x[d] >= hi[d]) return false;
  }
  return true;
}

CanPoint CanZone::Center() const {
  CanPoint c;
  for (int d = 0; d < kCanDims; ++d) c.x[d] = 0.5 * (lo[d] + hi[d]);
  return c;
}

bool CanZone::IsNeighbor(const CanZone& other) const {
  // A (d-1)-face is shared iff the zones abut in exactly one dimension and
  // their extents overlap in every other dimension (corner contact is not
  // adjacency in CAN).
  int abut_only = 0;
  for (int d = 0; d < kCanDims; ++d) {
    bool overlaps = Overlaps(lo[d], hi[d], other.lo[d], other.hi[d]);
    bool abuts = Abuts(lo[d], hi[d], other.lo[d], other.hi[d]);
    if (overlaps) continue;
    if (abuts) {
      ++abut_only;
    } else {
      return false;  // separated in this dimension
    }
  }
  return abut_only == 1;
}

double CanZone::Volume() const {
  double v = 1.0;
  for (int d = 0; d < kCanDims; ++d) v *= hi[d] - lo[d];
  return v;
}

CanOverlay::CanOverlay(net::Network* network, Rng rng)
    : StructuredOverlay(network), rng_(rng) {}

void CanOverlay::SetMembers(const std::vector<net::PeerId>& members) {
  zones_.clear();
  neighbors_.clear();
  probe_budget_.clear();
  member_list_ = members;
  if (members.empty()) return;

  std::vector<net::PeerId> shuffled = members;
  rng_.Shuffle(shuffled.data(), shuffled.size());

  // Recursive halving, splitting dimensions round-robin -- the balanced
  // equivalent of CAN's incremental zone splits.
  std::function<void(size_t, size_t, CanZone, int)> assign =
      [&](size_t lo_i, size_t hi_i, CanZone zone, int dim) {
        size_t n = hi_i - lo_i;
        if (n == 1) {
          zones_[shuffled[lo_i]] = zone;
          return;
        }
        size_t mid_i = lo_i + n / 2;
        double mid = 0.5 * (zone.lo[dim] + zone.hi[dim]);
        CanZone left = zone;
        left.hi[dim] = mid;
        CanZone right = zone;
        right.lo[dim] = mid;
        int next = (dim + 1) % kCanDims;
        assign(lo_i, mid_i, left, next);
        assign(mid_i, hi_i, right, next);
      };
  CanZone unit;
  for (int d = 0; d < kCanDims; ++d) {
    unit.lo[d] = 0.0;
    unit.hi[d] = 1.0;
  }
  assign(0, shuffled.size(), unit, 0);

  // Neighbor lists (O(n^2) construction; fine for simulation scales).
  for (net::PeerId a : member_list_) {
    auto& nbrs = neighbors_[a];
    const CanZone& za = zones_.at(a);
    for (net::PeerId b : member_list_) {
      if (a == b) continue;
      if (za.IsNeighbor(zones_.at(b))) nbrs.push_back(b);
    }
  }
}

bool CanOverlay::IsMember(net::PeerId peer) const {
  return zones_.count(peer) > 0;
}

const CanZone& CanOverlay::ZoneOf(net::PeerId peer) const {
  static const CanZone kEmpty{};
  auto it = zones_.find(peer);
  return it == zones_.end() ? kEmpty : it->second;
}

const std::vector<net::PeerId>& CanOverlay::NeighborsOf(
    net::PeerId peer) const {
  auto it = neighbors_.find(peer);
  return it == neighbors_.end() ? empty_ : it->second;
}

CanPoint CanOverlay::KeyToPoint(uint64_t key) {
  CanPoint p;
  uint64_t h = Mix64(key ^ 0xCA11AB1E5EEDULL);
  for (int d = 0; d < kCanDims; ++d) {
    // 32 bits per coordinate (kCanDims == 2).
    uint64_t bits = (h >> (32 * d)) & 0xFFFFFFFFULL;
    p.x[d] = static_cast<double>(bits) / 4294967296.0;
  }
  return p;
}

net::PeerId CanOverlay::ResponsibleMember(uint64_t key) const {
  CanPoint p = KeyToPoint(key);
  for (const auto& [peer, zone] : zones_) {
    if (zone.Contains(p)) return peer;
  }
  return net::kInvalidPeer;
}

double CanOverlay::DistanceToZone(const CanPoint& p, const CanZone& z) {
  double sum = 0.0;
  for (int d = 0; d < kCanDims; ++d) {
    double dd = TorusDistToInterval(p.x[d], z.lo[d], z.hi[d]);
    sum += dd * dd;
  }
  return sum;
}

bool CanOverlay::StartLookup(net::PeerId origin, uint64_t key,
                             net::PeerId* responsible) {
  if (zones_.empty()) return false;
  assert(IsMember(origin) && "lookup origin must be a member");
  LookupSlot& slot = CurrentSlot();
  slot.point = KeyToPoint(key);
  *responsible = ResponsibleMember(key);
  ++slot.visit_gen;
  MarkVisited(origin);
  return true;
}

bool CanOverlay::AtDestination(net::PeerId peer, uint64_t /*key*/) const {
  auto it = zones_.find(peer);
  return it != zones_.end() && it->second.Contains(CurrentSlot().point);
}

uint32_t CanOverlay::LookupHopLimit() const {
  // Greedy routing advances every hop (~n^(1/d) per dim); the slack
  // accommodates churn detours.
  return 8 * static_cast<uint32_t>(
                 std::ceil(std::pow(static_cast<double>(zones_.size()),
                                    1.0 / kCanDims))) +
         16;
}

void CanOverlay::NextHops(const RouteState& state, uint64_t /*key*/,
                          std::vector<RouteCandidate>* out) {
  LookupSlot& slot = CurrentSlot();
  const CanPoint& point = slot.point;
  const double cur_dist = DistanceToZone(point, zones_.at(state.cur));
  // Neighbors in order of increasing distance-to-target: every
  // progressing neighbor, then at most one unvisited non-progressing
  // detour (the visited set prevents detour loops when greedy progress
  // is blocked by offline zones).
  std::vector<net::PeerId>& order = slot.sort_scratch;
  order = NeighborsOf(state.cur);
  std::sort(order.begin(), order.end(),
            [&](net::PeerId a, net::PeerId b) {
              return DistanceToZone(point, zones_.at(a)) <
                     DistanceToZone(point, zones_.at(b));
            });
  bool emitted_detour = false;
  for (net::PeerId cand : order) {
    const double d = DistanceToZone(point, zones_.at(cand));
    if (!(d < cur_dist)) {
      if (emitted_detour || Visited(cand)) continue;
      emitted_detour = true;
    }
    // Progress metric: the remaining torus distance itself -- exact ties
    // (symmetric zone geometry) are the only interchangeable candidates.
    out->push_back(RouteCandidate{cand, d, false});
  }
}

uint64_t CanOverlay::RunMaintenanceRound(double env) {
  uint64_t probes = 0;
  for (net::PeerId peer : member_list_) {
    if (!network_->IsOnline(peer)) continue;
    const auto& nbrs = NeighborsOf(peer);
    if (nbrs.empty()) continue;
    double& budget = probe_budget_[peer];
    budget += env * static_cast<double>(nbrs.size());
    while (budget >= 1.0) {
      budget -= 1.0;
      net::PeerId target = nbrs[rng_.UniformU64(nbrs.size())];
      net::Message probe;
      probe.type = net::MessageType::kRoutingProbe;
      probe.from = peer;
      probe.to = target;
      network_->Send(probe);
      ++probes;
    }
  }
  return probes;
}

uint32_t CanOverlay::PlanMaintenanceRound(double env) {
  // Same budget accrual as the serial round, in the same member order;
  // whole probes frozen at plan time.  Draws no randomness, so rng_
  // advances identically whichever engine runs maintenance.
  maint_tasks_.clear();
  for (net::PeerId peer : member_list_) {
    if (!network_->IsOnline(peer)) continue;
    const auto& nbrs = NeighborsOf(peer);
    if (nbrs.empty()) continue;
    double& budget = probe_budget_[peer];
    budget += env * static_cast<double>(nbrs.size());
    const uint32_t probes = static_cast<uint32_t>(budget);
    budget -= static_cast<double>(probes);
    if (probes > 0) maint_tasks_.push_back(MaintTask{peer, probes});
  }
  return static_cast<uint32_t>(maint_tasks_.size());
}

void CanOverlay::ExecuteMaintenanceTask(uint32_t task, Rng& rng) {
  const MaintTask& t = maint_tasks_[task];
  const auto& nbrs = NeighborsOf(t.peer);
  if (nbrs.empty()) return;
  for (uint32_t p = 0; p < t.probes; ++p) {
    net::PeerId target = nbrs[rng.UniformU64(nbrs.size())];
    net::Message probe;
    probe.type = net::MessageType::kRoutingProbe;
    probe.from = t.peer;
    probe.to = target;
    network_->Send(probe);
  }
}

uint64_t CanOverlay::FinishMaintenanceRound() {
  uint64_t probes = 0;
  for (const MaintTask& t : maint_tasks_) probes += t.probes;
  maint_tasks_.clear();
  return probes;
}

uint64_t CanOverlay::RoutingFingerprint() const {
  auto double_bits = [](double d) {
    uint64_t b;
    std::memcpy(&b, &d, sizeof(b));
    return b;
  };
  uint64_t h = 0x63616eULL;  // "can"
  for (net::PeerId peer : member_list_) {
    auto zit = zones_.find(peer);
    if (zit == zones_.end()) continue;
    h = Mix64(HashCombine(h, peer));
    for (int d = 0; d < kCanDims; ++d) {
      h = Mix64(HashCombine(h, double_bits(zit->second.lo[d])));
      h = Mix64(HashCombine(h, double_bits(zit->second.hi[d])));
    }
    const auto& nbrs = NeighborsOf(peer);
    h = Mix64(HashCombine(h, nbrs.size()));
    for (net::PeerId n : nbrs) h = Mix64(HashCombine(h, n));
  }
  return h;
}

size_t CanOverlay::TableSize(net::PeerId peer) const {
  return NeighborsOf(peer).size();
}

std::string CanOverlay::CheckInvariants() const {
  double volume = 0.0;
  for (const auto& [peer, zone] : zones_) {
    (void)peer;
    volume += zone.Volume();
  }
  if (std::abs(volume - 1.0) > 1e-9 && !zones_.empty()) {
    std::ostringstream err;
    err << "zone volumes sum to " << volume << ", expected 1";
    return err.str();
  }
  // Sampled coverage + uniqueness.
  for (uint64_t k = 0; k < 128; ++k) {
    CanPoint p = KeyToPoint(k * 0x9e3779b9ULL + 3);
    int owners = 0;
    for (const auto& [peer, zone] : zones_) {
      (void)peer;
      if (zone.Contains(p)) ++owners;
    }
    if (owners != 1 && !zones_.empty()) {
      std::ostringstream err;
      err << "point has " << owners << " owners";
      return err.str();
    }
  }
  return "";
}

}  // namespace pdht::overlay
