// CAN-style structured overlay [RaFr01] ("A scalable content-addressable
// network", cited by the paper among the traditional DHTs).
//
// Peers own hyper-rectangular zones of a d-dimensional unit torus; a key
// hashes to a point and is owned by the zone containing it.  Routing is
// greedy: forward to the neighbor (zone sharing a face) whose zone is
// closest to the target point, giving O(d * n^(1/d)) hops -- a different
// asymptotic regime from Chord/P-Grid's O(log n), which makes CAN the
// most demanding test of the paper's claim that the analysis "can be
// adapted to suit most other DHT proposals": cSIndx changes, the
// qualitative picture must not (bench_ablation_backends covers it).
//
// Construction splits zones recursively round-robin across dimensions
// (balanced, deterministic).  Churn handling mirrors the other overlays:
// sends to offline owners are counted and lost; routing falls back to the
// best *online* neighbor that still makes progress.

#ifndef PDHT_OVERLAY_CAN_CAN_H_
#define PDHT_OVERLAY_CAN_CAN_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "overlay/structured_overlay.h"
#include "util/rng.h"

namespace pdht::overlay {

/// Dimensionality is fixed at compile time for simplicity; 2 is CAN's
/// classic illustration and keeps zone geometry easy to reason about.
constexpr int kCanDims = 2;

struct CanPoint {
  std::array<double, kCanDims> x{};
};

struct CanZone {
  std::array<double, kCanDims> lo{};
  std::array<double, kCanDims> hi{};

  bool Contains(const CanPoint& p) const;
  CanPoint Center() const;
  /// Shares a (d-1)-face on the torus: abutting in exactly one dimension
  /// and overlapping in all others.
  bool IsNeighbor(const CanZone& other) const;
  double Volume() const;
};

class CanOverlay : public StructuredOverlay {
 public:
  CanOverlay(net::Network* network, Rng rng);

  /// Builds the zone partition over the given members (free, like the
  /// other overlays' SetMembers).
  void SetMembers(const std::vector<net::PeerId>& members) override;

  bool IsMember(net::PeerId peer) const override;
  size_t num_members() const override { return zones_.size(); }
  const std::vector<net::PeerId>& members() const override {
    return member_list_;
  }

  const CanZone& ZoneOf(net::PeerId peer) const;
  const std::vector<net::PeerId>& NeighborsOf(net::PeerId peer) const;

  /// Point a key hashes to.
  static CanPoint KeyToPoint(uint64_t key);

  /// Owner of the key's point.
  net::PeerId ResponsibleMember(uint64_t key) const override;

  // Routing-engine contract: primary candidates are the neighbors in
  // order of increasing distance to the target point -- every progressing
  // neighbor, plus at most one unvisited non-progressing detour per hop
  // (CAN's "route around failures").  There is no recovery scan: a hop
  // whose candidates are all offline is a genuine dead end (greedy CAN
  // does not backtrack), and a hop-limit exit fails.
  bool StartLookup(net::PeerId origin, uint64_t key,
                   net::PeerId* responsible) override;
  bool AtDestination(net::PeerId peer, uint64_t key) const override;
  uint32_t LookupHopLimit() const override;
  void NextHops(const RouteState& state, uint64_t key,
                std::vector<RouteCandidate>* out) override;
  void OnAdvance(net::PeerId peer) override { MarkVisited(peer); }

  /// Probe-based neighbor maintenance (env semantics as elsewhere).
  /// CAN zones are static here, so "repair" means remembering the
  /// neighbor is down; probes detect and are counted.  Returns probes.
  /// Rejoin needs no refresh either (OnPeerRejoin keeps the base no-op).
  uint64_t RunMaintenanceRound(double env) override;

  /// Sharded maintenance (plan/execute/publish, see StructuredOverlay).
  /// Plan consumes the same fractional probe budgets as the serial round
  /// in member-list order; execute only probes (CAN has no repair --
  /// zones and neighbor lists are static), reading the frozen neighbor
  /// lists and drawing from the caller Rng, so distinct tasks are
  /// trivially race-free.
  bool has_sharded_maintenance() const override { return true; }
  uint32_t PlanMaintenanceRound(double env) override;
  void ExecuteMaintenanceTask(uint32_t task, Rng& rng) override;
  uint64_t FinishMaintenanceRound() override;

  /// Order-sensitive hash over zone bounds and neighbor lists of every
  /// member (determinism-test hook).  Static after SetMembers, but the
  /// matrix tests still pin it across thread/shard counts.
  uint64_t RoutingFingerprint() const override;

  size_t TableSize(net::PeerId peer) const;

  /// Zone-partition invariants: volumes sum to 1, zones don't overlap (on
  /// a sample), every sampled point has an owner.  Empty string when ok.
  std::string CheckInvariants() const override;

 private:
  /// Torus distance between a point and a zone (0 if inside).
  static double DistanceToZone(const CanPoint& p, const CanZone& z);

  /// Per-lookup routing state, one entry per lookup slot (set in
  /// StartLookup; concurrent walks each run under their own
  /// CurrentLookupSlot and only read the shared zones/neighbor lists).
  struct LookupSlot {
    CanPoint point{};
    std::vector<net::PeerId> sort_scratch;  ///< NextHops neighbor order
    /// Epoch-stamped per-lookup visited set (detour-loop prevention)
    /// without per-lookup allocation.
    std::vector<uint32_t> visit_epoch;
    uint32_t visit_gen = 0;
  };

  LookupSlot& CurrentSlot() { return lookup_slots_[CurrentLookupSlot()]; }
  const LookupSlot& CurrentSlot() const {
    return lookup_slots_[CurrentLookupSlot()];
  }
  void MarkVisited(net::PeerId peer) {
    LookupSlot& slot = CurrentSlot();
    if (peer >= slot.visit_epoch.size()) {
      slot.visit_epoch.resize(peer + 1, 0);
    }
    slot.visit_epoch[peer] = slot.visit_gen;
  }
  bool Visited(net::PeerId peer) const {
    const LookupSlot& slot = CurrentSlot();
    return peer < slot.visit_epoch.size() &&
           slot.visit_epoch[peer] == slot.visit_gen;
  }

  Rng rng_;
  std::unordered_map<net::PeerId, CanZone> zones_;
  std::unordered_map<net::PeerId, std::vector<net::PeerId>> neighbors_;
  std::vector<net::PeerId> member_list_;
  std::unordered_map<net::PeerId, double> probe_budget_;
  std::vector<net::PeerId> empty_;

  /// One sharded-maintenance task: all of a member's probes for the
  /// round, frozen at plan time (neighbor lists are static).
  struct MaintTask {
    net::PeerId peer = net::kInvalidPeer;
    uint32_t probes = 0;
  };
  std::vector<MaintTask> maint_tasks_;

  std::vector<LookupSlot> lookup_slots_{1};
  void ResizeLookupSlots(uint32_t n) override { lookup_slots_.resize(n); }
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_CAN_CAN_H_
