#include "overlay/dht/finger_table.h"

namespace pdht::overlay {

const FingerEntry* FingerTable::ClosestPreceding(NodeId self, NodeId target,
                                                 uint64_t skip_mask) const {
  const FingerEntry* best = nullptr;
  NodeId best_dist = 0;
  size_t idx = 0;
  auto consider = [&](const FingerEntry& e) {
    size_t my_idx = idx++;
    if (my_idx < 64 && (skip_mask >> my_idx) & 1) return;
    if (e.peer == net::kInvalidPeer) return;
    // Candidate must lie strictly between self and target (clockwise) so
    // that every hop makes progress.
    if (!InIntervalOpen(e.peer_id, self, target)) return;
    // Prefer the candidate closest to (i.e. least clockwise distance to)
    // the target: that is the "closest preceding" node.
    NodeId dist = RingDistance(e.peer_id, target);
    if (best == nullptr || dist < best_dist) {
      best = &e;
      best_dist = dist;
    }
  };
  for (const auto& f : fingers_) consider(f);
  for (const auto& s : successors_) consider(s);
  return best;
}

int FingerTable::IndexOf(const FingerEntry* entry) const {
  for (size_t i = 0; i < fingers_.size(); ++i) {
    if (&fingers_[i] == entry) return static_cast<int>(i);
  }
  for (size_t i = 0; i < successors_.size(); ++i) {
    if (&successors_[i] == entry) {
      return static_cast<int>(fingers_.size() + i);
    }
  }
  return -1;
}

}  // namespace pdht::overlay
