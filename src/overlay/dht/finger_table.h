// Per-node routing state for the Chord-like overlay.
//
// A finger table holds, for each power-of-two offset 2^i, a pointer to the
// first member clockwise of (node_id + 2^i).  Entries record the peer they
// point to; whether that peer is currently reachable is a property of the
// network, and a pointer whose target went offline is precisely a "stale
// routing entry" in the paper's maintenance model (Eq. 8).  The table also
// keeps a short successor list for routing around failures.

#ifndef PDHT_OVERLAY_DHT_FINGER_TABLE_H_
#define PDHT_OVERLAY_DHT_FINGER_TABLE_H_

#include <cstdint>
#include <vector>

#include "net/message.h"
#include "overlay/dht/id.h"

namespace pdht::overlay {

struct FingerEntry {
  NodeId start = 0;                     ///< node_id + 2^i (the target).
  net::PeerId peer = net::kInvalidPeer; ///< member the entry points to.
  NodeId peer_id = 0;                   ///< that member's ring id.
};

class FingerTable {
 public:
  /// `bits` fingers (offsets 2^(64-bits) .. 2^63 would be overkill for
  /// small rings; we use the lowest `bits` powers scaled to ring size 2^64:
  /// offsets 2^(64-1-i)).  In practice bits = ceil(log2(ring size)) + few.
  FingerTable() = default;

  void Clear() {
    fingers_.clear();
    successors_.clear();
  }

  std::vector<FingerEntry>& fingers() { return fingers_; }
  const std::vector<FingerEntry>& fingers() const { return fingers_; }
  std::vector<FingerEntry>& successors() { return successors_; }
  const std::vector<FingerEntry>& successors() const { return successors_; }

  size_t size() const { return fingers_.size() + successors_.size(); }

  /// Closest finger (or successor) strictly preceding `target` clockwise
  /// from `self`, skipping entries whose index is in `skip` (already tried
  /// and found dead).  Returns nullptr if none qualifies.
  /// `skip` is a bitmask over fingers_ then successors_ concatenated.
  const FingerEntry* ClosestPreceding(NodeId self, NodeId target,
                                      uint64_t skip_mask) const;

  /// Index (into the concatenated finger+successor sequence) of `entry`;
  /// used to build skip masks.  Returns -1 if not found.
  int IndexOf(const FingerEntry* entry) const;

 private:
  std::vector<FingerEntry> fingers_;
  std::vector<FingerEntry> successors_;
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_DHT_FINGER_TABLE_H_
