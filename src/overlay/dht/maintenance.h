// Probe-based routing table maintenance (paper Section 3.3.1, Eq. 8).
//
// "One possible strategy is to probe routing entries with a given rate to
// detect offline peers [MaCa03] ... we need only messages to detect stale
// routing entries (by probing) but assume no additional messages to repair
// those routing entries" (piggybacked repair).
//
// Each online member probes `env` messages per routing entry per round:
// with a table of size ~log2(numActivePeers), that is env * log2(nap)
// probe messages per peer per round, i.e. exactly the cRtn numerator of
// Eq. 8.  A probe that hits an offline target detects the stale entry,
// which is then repaired for free (RepairFinger), per the paper's
// piggybacking assumption.  Fractional probe budgets accumulate across
// rounds so env < 1 is honoured exactly in expectation.

#ifndef PDHT_OVERLAY_DHT_MAINTENANCE_H_
#define PDHT_OVERLAY_DHT_MAINTENANCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "overlay/dht/chord.h"
#include "util/rng.h"

namespace pdht::overlay {

struct MaintenanceStats {
  uint64_t probes_sent = 0;
  uint64_t stale_detected = 0;
  uint64_t repairs = 0;
};

class ChordMaintenance {
 public:
  /// `env`: probe messages per routing entry per round.
  ChordMaintenance(ChordOverlay* overlay, net::Network* network, double env,
                   Rng rng);

  /// Runs one maintenance round across all online members.
  void RunRound();

  // --- Sharded round (plan/execute/finish) -----------------------------
  //
  // The StructuredOverlay sharded-maintenance contract, implemented
  // here so the fractional budget map stays in one place.  PlanRound
  // consumes budgets serially (unordered_map insertion is not
  // thread-safe) in ring order and freezes each member's probe count at
  // its round-start table size; ExecuteTask probes/repairs one member's
  // table with the caller's Rng -- repairs write only that member's
  // table, so distinct tasks are race-free -- accumulating stats into a
  // per-task slot; FinishRound merges the slots in task order.

  /// Serial PLAN: accrues env * table_size per online member, emits one
  /// task per member with >= 1 whole probe.  Returns the task count.
  uint32_t PlanRound();

  /// Parallel EXECUTE of task `task` (in [0, PlanRound())), drawing only
  /// from `rng`.  Safe to call concurrently for distinct tasks.
  void ExecuteTask(uint32_t task, Rng& rng);

  /// Serial FINISH: folds per-task stats into stats(); returns the
  /// round's probes sent.
  uint64_t FinishRound();

  /// Refreshes a peer's full table without message cost; call when a peer
  /// rejoins after downtime ("piggybacking routing information on queries"
  /// keeps rejoining cheap in the paper's model).
  void OnPeerRejoin(net::PeerId peer);

  const MaintenanceStats& stats() const { return stats_; }
  double env() const { return env_; }
  /// Adjusts the probe rate without resetting accumulated fractional
  /// budgets or stats (env may vary per round through StructuredOverlay).
  void set_env(double env) { env_ = env; }

  /// Expected probe messages per online member per round: env * table size.
  double ExpectedProbesPerPeer(net::PeerId peer) const;

 private:
  struct MaintTask {
    net::PeerId peer = net::kInvalidPeer;
    uint32_t probes = 0;  ///< whole probes granted at plan time
  };
  struct TaskStats {
    uint32_t probes = 0;
    uint32_t stale = 0;
    uint32_t repairs = 0;
  };

  ChordOverlay* overlay_;
  net::Network* network_;
  double env_;
  Rng rng_;
  MaintenanceStats stats_;
  std::unordered_map<net::PeerId, double> budget_;  // fractional carry-over
  std::vector<MaintTask> tasks_;       // sharded-round plan
  std::vector<TaskStats> task_stats_;  // parallel to tasks_
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_DHT_MAINTENANCE_H_
