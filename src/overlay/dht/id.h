// Circular binary identifier space for the structured overlay.
//
// "For simplicity we assume a binary key space" (paper footnote 3).  Ids
// are 64-bit values on a ring of size 2^64; keys are hashed into the same
// space.  All interval logic is clockwise (increasing ids, wrapping).

#ifndef PDHT_OVERLAY_DHT_ID_H_
#define PDHT_OVERLAY_DHT_ID_H_

#include <cstdint>
#include <string>

#include "net/message.h"

namespace pdht::overlay {

using NodeId = uint64_t;

/// Clockwise distance from `from` to `to` on the 2^64 ring.
NodeId RingDistance(NodeId from, NodeId to);

/// True iff x lies in the half-open clockwise interval (a, b].
bool InIntervalOpenClosed(NodeId x, NodeId a, NodeId b);

/// True iff x lies in the open clockwise interval (a, b).
bool InIntervalOpen(NodeId x, NodeId a, NodeId b);

/// Maps a peer to its node id (uniform over the ring, derived from the
/// peer number via a bijective mixer so ids are deterministic yet spread).
NodeId PeerToNodeId(net::PeerId peer);

/// Maps an application key to its position on the ring.
NodeId KeyToNodeId(uint64_t key);

/// Hex rendering for logs/tests.
std::string NodeIdToString(NodeId id);

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_DHT_ID_H_
