#include "overlay/dht/id.h"

#include <cstdio>

#include "util/hash.h"

namespace pdht::overlay {

NodeId RingDistance(NodeId from, NodeId to) {
  return to - from;  // unsigned wrap-around is exactly ring distance
}

bool InIntervalOpenClosed(NodeId x, NodeId a, NodeId b) {
  if (a == b) return true;  // full ring
  return RingDistance(a, x) != 0 && RingDistance(a, x) <= RingDistance(a, b);
}

bool InIntervalOpen(NodeId x, NodeId a, NodeId b) {
  if (a == b) return x != a;  // full ring minus the endpoint
  return RingDistance(a, x) != 0 && RingDistance(a, x) < RingDistance(a, b);
}

NodeId PeerToNodeId(net::PeerId peer) {
  return Mix64(0x7065657273ULL ^ (static_cast<uint64_t>(peer) << 1));
}

NodeId KeyToNodeId(uint64_t key) {
  return Mix64(0x6b657973ULL ^ (key * 0x9e3779b97f4a7c15ULL));
}

std::string NodeIdToString(NodeId id) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace pdht::overlay
