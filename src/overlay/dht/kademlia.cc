#include "overlay/dht/kademlia.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "util/bits.h"
#include "util/hash.h"

namespace pdht::overlay {

namespace {

/// Index of the highest bit where a and b differ (63 = MSB); requires
/// a != b.
int BucketIndex(NodeId a, NodeId b) { return FloorLog2(a ^ b); }

}  // namespace

KademliaOverlay::KademliaOverlay(net::Network* network, Rng rng,
                                 uint32_t bucket_size, uint32_t alpha)
    : StructuredOverlay(network), rng_(rng), bucket_size_(bucket_size),
      alpha_(alpha) {
  assert(bucket_size >= 1);
  assert(alpha >= 1);
}

void KademliaOverlay::SetMembers(const std::vector<net::PeerId>& members) {
  nodes_.clear();
  member_list_.clear();
  sorted_ids_.clear();
  probe_budget_.clear();
  if (members.empty()) return;
  member_list_ = members;
  std::sort(member_list_.begin(), member_list_.end(),
            [](net::PeerId a, net::PeerId b) {
              return PeerToNodeId(a) < PeerToNodeId(b);
            });
  sorted_ids_.reserve(member_list_.size());
  for (net::PeerId p : member_list_) {
    sorted_ids_.push_back(PeerToNodeId(p));
    nodes_[p] = NodeState{PeerToNodeId(p), {}};
  }
  for (net::PeerId p : member_list_) BuildBuckets(p, rng_);
}

std::vector<net::PeerId> KademliaOverlay::BucketCandidates(
    NodeId id, int bucket) const {
  // Members in [id ^ 2^bucket .. id ^ (2^(bucket+1) - 1)]: ids sharing
  // the 63-bucket leading bits of `id` and differing at bit `bucket`.
  // That range is contiguous in sorted id order, so two binary searches
  // suffice.
  NodeId lo = (id ^ (NodeId{1} << bucket)) &
              ~((NodeId{1} << bucket) - 1);  // flip bit, clear tail
  NodeId hi = lo | ((NodeId{1} << bucket) - 1);
  auto first = std::lower_bound(sorted_ids_.begin(), sorted_ids_.end(), lo);
  auto last = std::upper_bound(sorted_ids_.begin(), sorted_ids_.end(), hi);
  std::vector<net::PeerId> out;
  out.reserve(static_cast<size_t>(last - first));
  for (auto it = first; it != last; ++it) {
    out.push_back(
        member_list_[static_cast<size_t>(it - sorted_ids_.begin())]);
  }
  return out;
}

void KademliaOverlay::BuildBuckets(net::PeerId peer, Rng& rng) {
  NodeState& st = nodes_.at(peer);
  st.buckets.assign(64, {});
  for (int b = 0; b < 64; ++b) {
    std::vector<net::PeerId> cands = BucketCandidates(st.id, b);
    if (cands.size() > bucket_size_) {
      if (has_peer_rtt()) {
        // Proximity-aware selection: every candidate of this bucket makes
        // identical routing progress, so keep the k cheapest links.  RTTs
        // are materialized once per candidate (the oracle is a hash-and-
        // hypot evaluation, too costly for O(n log n) comparator calls);
        // the (rtt, id) key makes the choice deterministic even under
        // exact RTT ties.  No RNG draw happens on this path, so the
        // RTT-blind stream is untouched.
        std::vector<std::pair<double, net::PeerId>> by_rtt;
        by_rtt.reserve(cands.size());
        for (net::PeerId c : cands) by_rtt.emplace_back(PeerRtt(peer, c), c);
        std::sort(by_rtt.begin(), by_rtt.end());
        for (size_t i = 0; i < bucket_size_; ++i) cands[i] = by_rtt[i].second;
      } else {
        rng.Shuffle(cands.data(), cands.size());
      }
      cands.resize(bucket_size_);
    }
    st.buckets[b] = std::move(cands);
  }
}

bool KademliaOverlay::IsMember(net::PeerId peer) const {
  return nodes_.count(peer) > 0;
}

net::PeerId KademliaOverlay::ClosestMemberTo(NodeId target) const {
  if (sorted_ids_.empty()) return net::kInvalidPeer;
  // Binary-trie descent over the sorted id array: at each bit follow
  // target's branch when it is populated, else the other one.  The XOR
  // metric makes this exact (higher differing bits dominate), which a
  // plain nearest-in-sorted-order probe would not be.
  size_t lo = 0;
  size_t hi = sorted_ids_.size();
  NodeId prefix = 0;
  for (int b = 63; b >= 0 && hi - lo > 1; --b) {
    NodeId branch = prefix | (NodeId{1} << b);
    size_t mid = static_cast<size_t>(
        std::lower_bound(sorted_ids_.begin() + static_cast<long>(lo),
                         sorted_ids_.begin() + static_cast<long>(hi),
                         branch) -
        sorted_ids_.begin());
    const bool want_one = (target >> b) & 1;
    if (want_one ? mid < hi : mid > lo) {
      // Target's branch is populated: follow it.
      if (want_one) {
        lo = mid;
        prefix = branch;
      } else {
        hi = mid;
      }
    } else {
      // Forced onto the other branch.
      if (want_one) {
        hi = mid;
      } else {
        lo = mid;
        prefix = branch;
      }
    }
  }
  return member_list_[lo];
}

net::PeerId KademliaOverlay::ResponsibleMember(uint64_t key) const {
  return ClosestMemberTo(KeyToNodeId(key));
}

bool KademliaOverlay::StartLookup(net::PeerId origin, uint64_t key,
                                  net::PeerId* responsible) {
  if (member_list_.empty()) return false;
  assert(nodes_.count(origin) > 0 && "lookup origin must be a member");
  (void)origin;
  LookupSlot& slot = lookup_slots_[CurrentLookupSlot()];
  slot.target = KeyToNodeId(key);
  slot.owner = ClosestMemberTo(slot.target);
  *responsible = slot.owner;
  return true;
}

bool KademliaOverlay::AtDestination(net::PeerId peer,
                                    uint64_t /*key*/) const {
  return peer == lookup_slots_[CurrentLookupSlot()].owner;
}

uint32_t KademliaOverlay::LookupHopLimit() const {
  return 4 * static_cast<uint32_t>(CeilLog2(member_list_.size() + 1)) + 16;
}

void KademliaOverlay::NextHops(const RouteState& state, uint64_t /*key*/,
                               std::vector<RouteCandidate>* out) {
  LookupSlot& slot = lookup_slots_[CurrentLookupSlot()];
  const NodeState& cur = nodes_.at(state.cur);
  const NodeId cur_dist = cur.id ^ slot.target;
  // Contacts strictly closer to the target than we are, nearest first.
  // Distances are materialized once so the sort does no map lookups.
  std::vector<std::pair<NodeId, net::PeerId>>& closer = slot.closer_scratch;
  closer.clear();
  for (const auto& bucket : cur.buckets) {
    for (net::PeerId c : bucket) {
      NodeId d = nodes_.at(c).id ^ slot.target;
      if (d < cur_dist) closer.emplace_back(d, c);
    }
  }
  std::sort(closer.begin(), closer.end());
  for (size_t i = 0; i < closer.size(); ++i) {
    // Progress: the emission rank (distinct by construction), so the
    // driver's equal-progress route-PNS reorder is deliberately inert
    // for Kademlia -- with table-build PNS already keeping buckets
    // RTT-cheap, any candidate-level RTT-vs-distance trade measurably
    // inflates hops more than it saves per hop; Kademlia's route-PNS
    // win is the proximity entry selection in PdhtSystem::DhtEntryPoint
    // instead.
    out->push_back(
        RouteCandidate{closer[i].second, static_cast<double>(i), false});
  }
}

bool KademliaOverlay::FallbackHop(const RouteState& state, uint64_t /*key*/,
                                  uint32_t k, RouteCandidate* out) {
  // Greedy exhausted (table empty or all closer contacts offline): scan
  // the membership in XOR order, nearest first, until an online member
  // turns up -- the owner's closest online stand-in.  Reaching the
  // walk's own peer means it *is* the closest online member (the driver
  // ends routing there without a message).
  LookupSlot& slot = lookup_slots_[CurrentLookupSlot()];
  std::vector<std::pair<NodeId, net::PeerId>>& by_dist =
      slot.by_dist_scratch;
  if (k == 0) {
    by_dist.clear();
    by_dist.reserve(member_list_.size());
    for (size_t i = 0; i < member_list_.size(); ++i) {
      by_dist.emplace_back(sorted_ids_[i] ^ slot.target, member_list_[i]);
    }
    std::sort(by_dist.begin(), by_dist.end());
  }
  if (k >= by_dist.size()) return false;
  out->peer = by_dist[k].second;
  out->progress = static_cast<double>(k);  // XOR order is not reorderable
  out->terminal = false;
  (void)state;
  return true;
}

uint64_t KademliaOverlay::ProbeMember(net::PeerId peer, uint32_t probes,
                                      Rng& rng) {
  NodeState& st = nodes_.at(peer);
  // Bucket sizes never change during a round (repair swaps contacts in
  // place), so the per-probe pick domain is fixed at entry.
  const size_t table_size = TableSize(peer);
  if (table_size == 0) return 0;
  uint64_t sent = 0;
  for (uint32_t i = 0; i < probes; ++i) {
    // Pick a uniformly random contact across the (ragged) buckets.
    size_t idx = static_cast<size_t>(rng.UniformU64(table_size));
    size_t b = 0;
    while (idx >= st.buckets[b].size()) {
      idx -= st.buckets[b].size();
      ++b;
    }
    net::PeerId contact = st.buckets[b][idx];
    net::Message probe;
    probe.type = net::MessageType::kRoutingProbe;
    probe.from = peer;
    probe.to = contact;
    network_->Send(probe);
    ++sent;
    if (!network_->IsOnline(contact)) {
      // Repair is free (piggybacked): swap in an online member of the
      // same bucket not already referenced, if one exists.  With the
      // PeerRtt hook installed the *cheapest* such replacement wins
      // (proximity-aware repair); blind repair keeps first-found.
      std::vector<net::PeerId> cands =
          BucketCandidates(st.id, static_cast<int>(b));
      net::PeerId best = net::kInvalidPeer;
      double best_rtt = 0.0;
      for (net::PeerId cand : cands) {
        if (!network_->IsOnline(cand)) continue;
        if (std::find(st.buckets[b].begin(), st.buckets[b].end(), cand) !=
            st.buckets[b].end()) {
          continue;
        }
        if (!has_peer_rtt()) {
          best = cand;
          break;
        }
        const double rtt = PeerRtt(peer, cand);
        if (best == net::kInvalidPeer || rtt < best_rtt ||
            (rtt == best_rtt && cand < best)) {
          best = cand;
          best_rtt = rtt;
        }
      }
      if (best != net::kInvalidPeer) st.buckets[b][idx] = best;
    }
  }
  return sent;
}

uint64_t KademliaOverlay::RunMaintenanceRound(double env) {
  uint64_t probes = 0;
  for (net::PeerId peer : member_list_) {
    if (!network_->IsOnline(peer)) continue;
    size_t table_size = TableSize(peer);
    if (table_size == 0) continue;
    double& budget = probe_budget_[peer];
    budget += env * static_cast<double>(table_size);
    // floor + subtract leaves the same residual as the historical
    // `while (budget >= 1.0) budget -= 1.0` loop (integer subtraction
    // from a double this size is exact), and the draw sequence through
    // ProbeMember is probe-for-probe the old inline loop.
    const uint32_t whole = static_cast<uint32_t>(budget);
    budget -= static_cast<double>(whole);
    if (whole > 0) probes += ProbeMember(peer, whole, rng_);
  }
  return probes;
}

uint32_t KademliaOverlay::PlanMaintenanceRound(double env) {
  maint_tasks_.clear();
  for (net::PeerId peer : member_list_) {
    if (!network_->IsOnline(peer)) continue;
    const size_t table_size = TableSize(peer);
    if (table_size == 0) continue;
    double& budget = probe_budget_[peer];
    budget += env * static_cast<double>(table_size);
    const uint32_t whole = static_cast<uint32_t>(budget);
    budget -= static_cast<double>(whole);
    if (whole > 0) maint_tasks_.push_back(MaintTask{peer, whole});
  }
  maint_task_probes_.assign(maint_tasks_.size(), 0);
  return static_cast<uint32_t>(maint_tasks_.size());
}

void KademliaOverlay::ExecuteMaintenanceTask(uint32_t task, Rng& rng) {
  const MaintTask& t = maint_tasks_[task];
  // ProbeMember writes only t.peer's buckets and reads shared frozen
  // state (sorted ids, membership, online flags), so distinct tasks are
  // race-free.
  maint_task_probes_[task] = ProbeMember(t.peer, t.probes, rng);
}

uint64_t KademliaOverlay::FinishMaintenanceRound() {
  uint64_t probes = 0;
  for (uint64_t p : maint_task_probes_) probes += p;
  maint_tasks_.clear();
  maint_task_probes_.clear();
  return probes;
}

uint64_t KademliaOverlay::RoutingFingerprint() const {
  uint64_t h = 0x6b61646d6cULL;  // "kadml"
  for (net::PeerId peer : member_list_) {
    const NodeState& st = nodes_.at(peer);
    h = Mix64(HashCombine(h, HashCombine(st.id, peer)));
    for (const auto& bucket : st.buckets) {
      h = Mix64(HashCombine(h, bucket.size()));
      for (net::PeerId c : bucket) h = Mix64(HashCombine(h, c));
    }
  }
  return h;
}

void KademliaOverlay::RefreshNode(net::PeerId peer) {
  if (nodes_.count(peer) > 0) BuildBuckets(peer, rng_);
}

size_t KademliaOverlay::TableSize(net::PeerId peer) const {
  auto it = nodes_.find(peer);
  if (it == nodes_.end()) return 0;
  size_t n = 0;
  for (const auto& bucket : it->second.buckets) n += bucket.size();
  return n;
}

std::vector<net::PeerId> KademliaOverlay::ContactsOf(
    net::PeerId peer) const {
  std::vector<net::PeerId> out;
  auto it = nodes_.find(peer);
  if (it == nodes_.end()) return out;
  out.reserve(TableSize(peer));
  for (const auto& bucket : it->second.buckets) {
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  return out;
}

std::string KademliaOverlay::CheckInvariants() const {
  std::ostringstream err;
  for (size_t i = 1; i < sorted_ids_.size(); ++i) {
    if (!(sorted_ids_[i - 1] < sorted_ids_[i])) {
      err << "member ids not strictly sorted at index " << i;
      return err.str();
    }
  }
  for (const auto& [peer, st] : nodes_) {
    if (st.buckets.size() != 64) {
      err << "peer " << peer << " has " << st.buckets.size() << " buckets";
      return err.str();
    }
    for (int b = 0; b < 64; ++b) {
      if (st.buckets[b].size() > bucket_size_) {
        err << "peer " << peer << " bucket " << b << " over capacity";
        return err.str();
      }
      for (net::PeerId c : st.buckets[b]) {
        auto it = nodes_.find(c);
        if (it == nodes_.end()) {
          err << "peer " << peer << " references non-member " << c;
          return err.str();
        }
        if (BucketIndex(st.id, it->second.id) != b) {
          err << "peer " << peer << " filed contact " << c
              << " in bucket " << b << ", expected "
              << BucketIndex(st.id, it->second.id);
          return err.str();
        }
      }
    }
  }
  return "";
}

}  // namespace pdht::overlay
