// Chord-like structured overlay ("traditional DHT", paper Section 3.2).
//
// A ring of member peers in the 2^64 binary id space with power-of-two
// finger tables: lookups take ~ 1/2 * log2(numActivePeers) hops (Eq. 7),
// which the ablation bench verifies empirically.  Membership is dynamic in
// two senses:
//  * the *member set* is chosen by the PDHT layer (only numActivePeers
//    peers participate in the DHT when the index is small, Section 3.2);
//  * members churn on/off; fingers pointing at offline members are stale
//    until probing maintenance (maintenance.h) refreshes them, and lookups
//    pay extra messages to route around them.

#ifndef PDHT_OVERLAY_DHT_CHORD_H_
#define PDHT_OVERLAY_DHT_CHORD_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "overlay/dht/finger_table.h"
#include "overlay/dht/id.h"
#include "overlay/structured_overlay.h"  // LookupResult lives here
#include "util/rng.h"

namespace pdht::overlay {

class ChordMaintenance;

class ChordOverlay : public StructuredOverlay {
 public:
  /// `network` must outlive the overlay.  `successor_list_size` entries of
  /// redundancy for routing around failures.
  ChordOverlay(net::Network* network, Rng rng,
               uint32_t successor_list_size = 8);
  ~ChordOverlay() override;

  /// (Re)builds the ring over the given member peers.  Ids derive from
  /// peer numbers; finger tables are constructed fresh (bootstrap traffic
  /// is not the object of the paper's model, so construction is free; join
  /// messages for *incremental* joins are counted in AddMember).
  void SetMembers(const std::vector<net::PeerId>& members) override;

  /// Incrementally adds a member: builds its table and repairs affected
  /// fingers, counting kJoin traffic (O(log^2 n) messages, as in Chord).
  void AddMember(net::PeerId peer);

  /// Removes a member permanently (not churn -- actual departure).
  void RemoveMember(net::PeerId peer);

  bool IsMember(net::PeerId peer) const override;
  size_t num_members() const override { return ring_.size(); }
  const std::vector<net::PeerId>& members_sorted_by_id() const;
  const std::vector<net::PeerId>& members() const override {
    return members_sorted_by_id();
  }

  /// The member responsible for `key`: successor(KeyToNodeId(key)).
  net::PeerId ResponsibleMember(uint64_t key) const override;

  /// The `count` members succeeding the responsible one (replica holders).
  std::vector<net::PeerId> ResponsibleReplicas(uint64_t key,
                                               uint32_t count) const;

  // Routing-engine contract (the walk itself lives in RoutingDriver):
  // primary candidates are the table entries strictly preceding the key,
  // closest first; the recovery scan walks ring successors in order, so a
  // lookup whose owner is offline terminates at the owner's first online
  // successor (terminal step at or past the target).
  bool StartLookup(net::PeerId origin, uint64_t key,
                   net::PeerId* responsible) override;
  bool AtDestination(net::PeerId peer, uint64_t key) const override;
  uint32_t LookupHopLimit() const override;
  void NextHops(const RouteState& state, uint64_t key,
                std::vector<RouteCandidate>* out) override;
  /// Blind fast path: the skip-masked closest-preceding walk produces
  /// one candidate per failed probe -- no list, no sort (the candidate
  /// sequence is identical to NextHops' emission order).
  bool PrimaryHop(const RouteState& state, uint64_t key, uint32_t k,
                  RouteCandidate* out) override;
  bool has_incremental_primary() const override { return true; }
  bool FallbackHop(const RouteState& state, uint64_t key, uint32_t k,
                   RouteCandidate* out) override;
  bool LenientHopLimit() const override { return true; }
  /// Weighted route-PNS opt-in: progress is the remaining clockwise
  /// distance in bits and the finger walk strips ~2 bits per hop
  /// (E[hops] = 0.5*log2 n), so a bit is worth (mean one-way delay)/2
  /// milliseconds.  0 without an RTT oracle.
  double ProgressWeightMs() const override;

  /// One probe round of the owned ChordMaintenance (created on first use
  /// with the given env; see overlay/dht/maintenance.h).  Returns probes
  /// sent.
  uint64_t RunMaintenanceRound(double env) override;

  /// Sharded maintenance (plan/execute/publish, see StructuredOverlay):
  /// forwarded to the owned ChordMaintenance, which keeps the fractional
  /// budgets shared between the serial and sharded paths.
  bool has_sharded_maintenance() const override { return true; }
  uint32_t PlanMaintenanceRound(double env) override;
  void ExecuteMaintenanceTask(uint32_t task, Rng& rng) override;
  uint64_t FinishMaintenanceRound() override;

  /// Rejoin refresh, free/piggybacked (paper Section 3.3.1).
  void OnPeerRejoin(net::PeerId peer) override { RefreshNode(peer); }

  /// Table rebuilds draw no randomness, so the sharded rejoin is plain
  /// RefreshNode -- safe for distinct peers in parallel (BuildTable
  /// writes only the named member's table).
  bool has_sharded_rejoin() const override { return true; }
  void RejoinNode(net::PeerId peer, Rng& rng) override {
    (void)rng;
    RefreshNode(peer);
  }

  /// Order-sensitive hash over the ring: ids, fingers and successor
  /// lists of every member (determinism-test hook).
  uint64_t RoutingFingerprint() const override;

  /// Rebuilds one node's routing state from current membership; called by
  /// maintenance on finger repair and on rejoin after churn.
  void RefreshNode(net::PeerId peer);

  /// Recomputes where finger `idx` of `peer` should point and updates it.
  void RepairFinger(net::PeerId peer, size_t idx);

  FingerTable* TableOf(net::PeerId peer);
  const FingerTable* TableOf(net::PeerId peer) const;

  /// Fraction of finger entries (across online members) pointing at
  /// currently-offline peers: the stale-entry rate maintenance fights.
  double StaleFingerFraction() const;

  /// Verifies ring invariants (sorted ids, finger targets correct under
  /// current membership); returns an empty string or a violation message.
  /// Test-support API.
  std::string CheckInvariants() const override;

 private:
  struct Member {
    NodeId id;
    net::PeerId peer;
    FingerTable table;
  };

  /// Index into ring_ of successor(id) (the first member with
  /// member.id >= id, wrapping).
  size_t SuccessorIndex(NodeId id) const;
  void BuildTable(Member& m);
  Member* FindMember(net::PeerId peer);
  const Member* FindMember(net::PeerId peer) const;

  Rng rng_;
  uint32_t successor_list_size_;
  std::vector<Member> ring_;  // sorted by id
  std::unordered_map<net::PeerId, size_t> peer_to_index_;
  std::unique_ptr<ChordMaintenance> maint_;  // lazy, see RunMaintenanceRound
  mutable std::vector<net::PeerId> members_cache_;
  mutable bool members_cache_valid_ = false;

  /// Mean link RTT sampled over member pairs at SetMembers time (only
  /// with the PeerRtt oracle installed); feeds ProgressWeightMs.
  double mean_rtt_ms_ = 0.0;
  /// NextHops sort scratch: (distance-to-target, table index, peer).
  struct HopEntry {
    NodeId dist;
    uint32_t index;
    net::PeerId peer;
    bool operator<(const HopEntry& o) const {
      return dist != o.dist ? dist < o.dist : index < o.index;
    }
  };
  /// Per-lookup routing state, one entry per lookup slot (set in
  /// StartLookup; concurrent walks each run under their own
  /// CurrentLookupSlot and only read the shared ring/tables).
  struct LookupSlot {
    NodeId target = 0;
    net::PeerId owner = net::kInvalidPeer;
    size_t fallback_base = 0;  ///< ring index of the stalled hop's peer
    const Member* primary_cur = nullptr;  ///< PrimaryHop hop-scoped state
    uint64_t primary_skip = 0;            ///< tried-and-dead entry mask
    std::vector<HopEntry> hop_scratch;
  };
  std::vector<LookupSlot> lookup_slots_{1};
  void ResizeLookupSlots(uint32_t n) override { lookup_slots_.resize(n); }
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_DHT_CHORD_H_
