#include "overlay/dht/chord.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "overlay/dht/maintenance.h"
#include "util/bits.h"

namespace pdht::overlay {

ChordOverlay::ChordOverlay(net::Network* network, Rng rng,
                           uint32_t successor_list_size)
    : StructuredOverlay(network), rng_(rng),
      successor_list_size_(successor_list_size) {}

ChordOverlay::~ChordOverlay() = default;

uint64_t ChordOverlay::RunMaintenanceRound(double env) {
  if (maint_ == nullptr) {
    maint_ = std::make_unique<ChordMaintenance>(this, network_, env,
                                                rng_.Fork());
  } else {
    // Keep the instance: fractional probe budgets carry across rounds
    // even when the caller sweeps env.
    maint_->set_env(env);
  }
  uint64_t before = maint_->stats().probes_sent;
  maint_->RunRound();
  return maint_->stats().probes_sent - before;
}

void ChordOverlay::SetMembers(const std::vector<net::PeerId>& members) {
  ring_.clear();
  peer_to_index_.clear();
  members_cache_valid_ = false;
  ring_.reserve(members.size());
  for (net::PeerId p : members) {
    ring_.push_back(Member{PeerToNodeId(p), p, FingerTable{}});
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Member& a, const Member& b) { return a.id < b.id; });
  for (size_t i = 0; i < ring_.size(); ++i) {
    peer_to_index_[ring_[i].peer] = i;
  }
  for (auto& m : ring_) BuildTable(m);
}

size_t ChordOverlay::SuccessorIndex(NodeId id) const {
  assert(!ring_.empty());
  // First member with member.id >= id; wraps to 0.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), id,
      [](const Member& m, NodeId v) { return m.id < v; });
  if (it == ring_.end()) return 0;
  return static_cast<size_t>(it - ring_.begin());
}

void ChordOverlay::BuildTable(Member& m) {
  m.table.Clear();
  if (ring_.size() <= 1) return;
  // Fingers at offsets 2^63, 2^62, ... down to the ring's resolution.
  // ceil(log2(n)) + 2 fingers suffice to reach any region.
  int num_fingers = CeilLog2(ring_.size()) + 2;
  num_fingers = std::min(num_fingers, 56);
  auto& fingers = m.table.fingers();
  fingers.reserve(num_fingers);
  for (int i = 0; i < num_fingers; ++i) {
    NodeId offset = NodeId{1} << (63 - i);
    NodeId start = m.id + offset;  // wrapping add
    size_t si = SuccessorIndex(start);
    const Member& target = ring_[si];
    if (target.peer == m.peer) continue;  // self-pointer: useless entry
    fingers.push_back(FingerEntry{start, target.peer, target.id});
  }
  // Successor list.
  auto& succ = m.table.successors();
  size_t my_idx = peer_to_index_.at(m.peer);
  succ.reserve(successor_list_size_);
  for (uint32_t k = 1;
       k <= successor_list_size_ && k < ring_.size(); ++k) {
    const Member& s = ring_[(my_idx + k) % ring_.size()];
    succ.push_back(FingerEntry{s.id, s.peer, s.id});
  }
}

void ChordOverlay::AddMember(net::PeerId peer) {
  if (IsMember(peer)) return;
  Member nm{PeerToNodeId(peer), peer, FingerTable{}};
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), nm.id,
      [](const Member& m, NodeId v) { return m.id < v; });
  size_t pos = static_cast<size_t>(it - ring_.begin());
  ring_.insert(it, std::move(nm));
  peer_to_index_.clear();
  for (size_t i = 0; i < ring_.size(); ++i) {
    peer_to_index_[ring_[i].peer] = i;
  }
  members_cache_valid_ = false;
  BuildTable(ring_[pos]);
  // Join traffic: Chord's join costs O(log^2 n) messages to populate the
  // new node's table and notify affected nodes.  Count it explicitly.
  uint64_t join_msgs = 0;
  if (ring_.size() > 1) {
    int lg = CeilLog2(ring_.size());
    join_msgs = static_cast<uint64_t>(lg) * static_cast<uint64_t>(lg);
  }
  network_->CountOnly(net::MessageType::kJoin, join_msgs);
  // Repair other nodes' fingers that should now point to the new member.
  for (auto& m : ring_) {
    if (m.peer == peer) continue;
    for (auto& f : m.table.fingers()) {
      size_t si = SuccessorIndex(f.start);
      if (ring_[si].peer != f.peer) {
        f.peer = ring_[si].peer;
        f.peer_id = ring_[si].id;
      }
    }
  }
}

void ChordOverlay::RemoveMember(net::PeerId peer) {
  auto it = peer_to_index_.find(peer);
  if (it == peer_to_index_.end()) return;
  ring_.erase(ring_.begin() + static_cast<long>(it->second));
  peer_to_index_.clear();
  for (size_t i = 0; i < ring_.size(); ++i) {
    peer_to_index_[ring_[i].peer] = i;
  }
  members_cache_valid_ = false;
  // Entries pointing at the departed peer are repaired lazily by
  // maintenance (or eagerly here for tests via RefreshNode).
}

bool ChordOverlay::IsMember(net::PeerId peer) const {
  return peer_to_index_.count(peer) > 0;
}

const std::vector<net::PeerId>& ChordOverlay::members_sorted_by_id() const {
  if (!members_cache_valid_) {
    members_cache_.clear();
    members_cache_.reserve(ring_.size());
    for (const auto& m : ring_) members_cache_.push_back(m.peer);
    members_cache_valid_ = true;
  }
  return members_cache_;
}

net::PeerId ChordOverlay::ResponsibleMember(uint64_t key) const {
  if (ring_.empty()) return net::kInvalidPeer;
  return ring_[SuccessorIndex(KeyToNodeId(key))].peer;
}

std::vector<net::PeerId> ChordOverlay::ResponsibleReplicas(
    uint64_t key, uint32_t count) const {
  std::vector<net::PeerId> out;
  if (ring_.empty()) return out;
  size_t idx = SuccessorIndex(KeyToNodeId(key));
  uint32_t n = static_cast<uint32_t>(
      std::min<size_t>(count, ring_.size()));
  out.reserve(n);
  for (uint32_t k = 0; k < n; ++k) {
    out.push_back(ring_[(idx + k) % ring_.size()].peer);
  }
  return out;
}

ChordOverlay::Member* ChordOverlay::FindMember(net::PeerId peer) {
  auto it = peer_to_index_.find(peer);
  if (it == peer_to_index_.end()) return nullptr;
  return &ring_[it->second];
}

const ChordOverlay::Member* ChordOverlay::FindMember(
    net::PeerId peer) const {
  auto it = peer_to_index_.find(peer);
  if (it == peer_to_index_.end()) return nullptr;
  return &ring_[it->second];
}

LookupResult ChordOverlay::Lookup(net::PeerId origin, uint64_t key) {
  LookupResult result;
  if (ring_.empty()) return result;
  Member* cur = FindMember(origin);
  assert(cur != nullptr && "lookup origin must be a member");
  const NodeId target = KeyToNodeId(key);
  const size_t owner_idx = SuccessorIndex(target);
  const net::PeerId owner = ring_[owner_idx].peer;
  result.responsible = owner;

  const uint32_t hop_limit =
      4 * static_cast<uint32_t>(CeilLog2(ring_.size() + 1)) + 16;
  while (cur->peer != owner && result.hops < hop_limit) {
    uint64_t skip = 0;
    const FingerEntry* next = nullptr;
    // Try progressively less aggressive entries until one is reachable;
    // each failed attempt is a real (lost) message to a stale entry.
    while (true) {
      next = cur->table.ClosestPreceding(cur->id, target, skip);
      if (next == nullptr) break;
      net::Message m;
      m.type = net::MessageType::kDhtLookup;
      m.from = cur->peer;
      m.to = next->peer;
      m.key = key;
      m.tag = result.hops;
      network_->Send(m);
      ++result.messages;
      if (network_->IsOnline(next->peer)) break;
      ++result.failed_probes;
      int idx = cur->table.IndexOf(next);
      if (idx >= 0 && idx < 64) skip |= (uint64_t{1} << idx);
      next = nullptr;
    }
    if (next == nullptr) {
      // No finger makes progress (all stale or table empty): step to the
      // first online successor on the ring -- linear but guaranteed.
      size_t my_idx = peer_to_index_.at(cur->peer);
      Member* step = nullptr;
      for (size_t k = 1; k < ring_.size(); ++k) {
        Member& cand = ring_[(my_idx + k) % ring_.size()];
        net::Message m;
        m.type = net::MessageType::kDhtLookup;
        m.from = cur->peer;
        m.to = cand.peer;
        m.key = key;
        m.tag = result.hops;
        network_->Send(m);
        ++result.messages;
        if (network_->IsOnline(cand.peer)) {
          step = &cand;
          break;
        }
        ++result.failed_probes;
        // If cand is the (offline) owner we keep scanning: the key's
        // queries are served by the owner's first online successor.
      }
      if (step == nullptr) {
        return result;  // network effectively dead
      }
      cur = step;
      ++result.hops;
      if (InIntervalOpenClosed(target, ring_[my_idx].id, cur->id)) {
        // We stepped past the target: cur is the live successor.
        break;
      }
      continue;
    }
    cur = FindMember(next->peer);
    assert(cur != nullptr);
    ++result.hops;
  }

  result.responsible_online = network_->IsOnline(owner);
  result.terminus = cur->peer;
  result.success =
      cur->peer == owner ? result.responsible_online
                         : network_->IsOnline(cur->peer);
  // Result delivery back to the originator.
  if (result.success && cur->peer != origin) {
    net::Message resp;
    resp.type = net::MessageType::kDhtResponse;
    resp.from = cur->peer;
    resp.to = origin;
    resp.key = key;
    network_->Send(resp);
    ++result.messages;
  }
  return result;
}

FingerTable* ChordOverlay::TableOf(net::PeerId peer) {
  Member* m = FindMember(peer);
  return m == nullptr ? nullptr : &m->table;
}

const FingerTable* ChordOverlay::TableOf(net::PeerId peer) const {
  const Member* m = FindMember(peer);
  return m == nullptr ? nullptr : &m->table;
}

void ChordOverlay::RefreshNode(net::PeerId peer) {
  Member* m = FindMember(peer);
  if (m != nullptr) BuildTable(*m);
}

void ChordOverlay::RepairFinger(net::PeerId peer, size_t idx) {
  Member* m = FindMember(peer);
  if (m == nullptr) return;
  auto& fingers = m->table.fingers();
  if (idx < fingers.size()) {
    size_t si = SuccessorIndex(fingers[idx].start);
    // Point at the first *online* member at or after the finger start so
    // the repair actually removes the staleness.
    for (size_t k = 0; k < ring_.size(); ++k) {
      const Member& cand = ring_[(si + k) % ring_.size()];
      if (network_->IsOnline(cand.peer) || k + 1 == ring_.size()) {
        fingers[idx].peer = cand.peer;
        fingers[idx].peer_id = cand.id;
        break;
      }
    }
    return;
  }
  idx -= fingers.size();
  auto& succ = m->table.successors();
  if (idx < succ.size()) {
    // Rebuild the successor list from the next *online* members so the
    // repair actually removes staleness (an offline successor would be
    // re-detected immediately).
    size_t my_idx = peer_to_index_.at(peer);
    succ.clear();
    for (size_t k = 1;
         k < ring_.size() && succ.size() < successor_list_size_; ++k) {
      const Member& s = ring_[(my_idx + k) % ring_.size()];
      if (!network_->IsOnline(s.peer)) continue;
      succ.push_back(FingerEntry{s.id, s.peer, s.id});
    }
  }
}

double ChordOverlay::StaleFingerFraction() const {
  uint64_t total = 0;
  uint64_t stale = 0;
  for (const auto& m : ring_) {
    if (!network_->IsOnline(m.peer)) continue;
    for (const auto& f : m.table.fingers()) {
      ++total;
      if (!network_->IsOnline(f.peer)) ++stale;
    }
    for (const auto& s : m.table.successors()) {
      ++total;
      if (!network_->IsOnline(s.peer)) ++stale;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(stale) / static_cast<double>(total);
}

std::string ChordOverlay::CheckInvariants() const {
  std::ostringstream err;
  for (size_t i = 1; i < ring_.size(); ++i) {
    if (!(ring_[i - 1].id < ring_[i].id)) {
      err << "ring not strictly sorted at index " << i;
      return err.str();
    }
  }
  for (const auto& [peer, idx] : peer_to_index_) {
    if (idx >= ring_.size() || ring_[idx].peer != peer) {
      err << "peer_to_index_ inconsistent for peer " << peer;
      return err.str();
    }
  }
  return "";
}

}  // namespace pdht::overlay
