#include "overlay/dht/chord.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "overlay/dht/maintenance.h"
#include "util/bits.h"
#include "util/hash.h"

namespace pdht::overlay {

ChordOverlay::ChordOverlay(net::Network* network, Rng rng,
                           uint32_t successor_list_size)
    : StructuredOverlay(network), rng_(rng),
      successor_list_size_(successor_list_size) {}

ChordOverlay::~ChordOverlay() = default;

uint64_t ChordOverlay::RunMaintenanceRound(double env) {
  if (maint_ == nullptr) {
    maint_ = std::make_unique<ChordMaintenance>(this, network_, env,
                                                rng_.Fork());
  } else {
    // Keep the instance: fractional probe budgets carry across rounds
    // even when the caller sweeps env.
    maint_->set_env(env);
  }
  uint64_t before = maint_->stats().probes_sent;
  maint_->RunRound();
  return maint_->stats().probes_sent - before;
}

uint32_t ChordOverlay::PlanMaintenanceRound(double env) {
  // Same lazy construction as the serial path, so a run consumes the
  // identical rng_ fork whichever engine drives maintenance.
  if (maint_ == nullptr) {
    maint_ = std::make_unique<ChordMaintenance>(this, network_, env,
                                                rng_.Fork());
  } else {
    maint_->set_env(env);
  }
  return maint_->PlanRound();
}

void ChordOverlay::ExecuteMaintenanceTask(uint32_t task, Rng& rng) {
  maint_->ExecuteTask(task, rng);
}

uint64_t ChordOverlay::FinishMaintenanceRound() {
  return maint_->FinishRound();
}

uint64_t ChordOverlay::RoutingFingerprint() const {
  uint64_t h = 0x63686f7264ULL;  // "chord"
  for (const Member& m : ring_) {
    h = Mix64(HashCombine(h, HashCombine(m.id, m.peer)));
    for (const FingerEntry& f : m.table.fingers()) {
      h = Mix64(HashCombine(h, HashCombine(f.peer, f.peer_id)));
    }
    h = Mix64(HashCombine(h, m.table.successors().size()));
    for (const FingerEntry& s : m.table.successors()) {
      h = Mix64(HashCombine(h, HashCombine(s.peer, s.peer_id)));
    }
  }
  return h;
}

void ChordOverlay::SetMembers(const std::vector<net::PeerId>& members) {
  ring_.clear();
  peer_to_index_.clear();
  members_cache_valid_ = false;
  ring_.reserve(members.size());
  for (net::PeerId p : members) {
    ring_.push_back(Member{PeerToNodeId(p), p, FingerTable{}});
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Member& a, const Member& b) { return a.id < b.id; });
  for (size_t i = 0; i < ring_.size(); ++i) {
    peer_to_index_[ring_[i].peer] = i;
  }
  for (auto& m : ring_) BuildTable(m);
  mean_rtt_ms_ = 0.0;
  if (has_peer_rtt() && ring_.size() >= 2) {
    // Sample the link-RTT scale once (deterministic pair sweep) for the
    // weighted route-PNS cost model.
    const size_t n = ring_.size();
    const size_t samples = std::min<size_t>(64, n);
    double sum = 0.0;
    for (size_t i = 0; i < samples; ++i) {
      const size_t a = (i * n) / samples;
      const size_t b = (a + n / 2) % n;
      if (a == b) continue;
      sum += PeerRtt(ring_[a].peer, ring_[b].peer);
    }
    mean_rtt_ms_ = sum / static_cast<double>(samples);
  }
}

double ChordOverlay::ProgressWeightMs() const {
  return mean_rtt_ms_ <= 0.0 ? 0.0 : 0.5 * mean_rtt_ms_ / 2.0;
}

size_t ChordOverlay::SuccessorIndex(NodeId id) const {
  assert(!ring_.empty());
  // First member with member.id >= id; wraps to 0.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), id,
      [](const Member& m, NodeId v) { return m.id < v; });
  if (it == ring_.end()) return 0;
  return static_cast<size_t>(it - ring_.begin());
}

void ChordOverlay::BuildTable(Member& m) {
  m.table.Clear();
  if (ring_.size() <= 1) return;
  // Fingers at offsets 2^63, 2^62, ... down to the ring's resolution.
  // ceil(log2(n)) + 2 fingers suffice to reach any region.
  int num_fingers = CeilLog2(ring_.size()) + 2;
  num_fingers = std::min(num_fingers, 56);
  auto& fingers = m.table.fingers();
  fingers.reserve(num_fingers);
  for (int i = 0; i < num_fingers; ++i) {
    NodeId offset = NodeId{1} << (63 - i);
    NodeId start = m.id + offset;  // wrapping add
    size_t si = SuccessorIndex(start);
    const Member& target = ring_[si];
    if (target.peer == m.peer) continue;  // self-pointer: useless entry
    fingers.push_back(FingerEntry{start, target.peer, target.id});
  }
  // Successor list.
  auto& succ = m.table.successors();
  size_t my_idx = peer_to_index_.at(m.peer);
  succ.reserve(successor_list_size_);
  for (uint32_t k = 1;
       k <= successor_list_size_ && k < ring_.size(); ++k) {
    const Member& s = ring_[(my_idx + k) % ring_.size()];
    succ.push_back(FingerEntry{s.id, s.peer, s.id});
  }
}

void ChordOverlay::AddMember(net::PeerId peer) {
  if (IsMember(peer)) return;
  Member nm{PeerToNodeId(peer), peer, FingerTable{}};
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), nm.id,
      [](const Member& m, NodeId v) { return m.id < v; });
  size_t pos = static_cast<size_t>(it - ring_.begin());
  ring_.insert(it, std::move(nm));
  peer_to_index_.clear();
  for (size_t i = 0; i < ring_.size(); ++i) {
    peer_to_index_[ring_[i].peer] = i;
  }
  members_cache_valid_ = false;
  BuildTable(ring_[pos]);
  // Join traffic: Chord's join costs O(log^2 n) messages to populate the
  // new node's table and notify affected nodes.  Count it explicitly.
  uint64_t join_msgs = 0;
  if (ring_.size() > 1) {
    int lg = CeilLog2(ring_.size());
    join_msgs = static_cast<uint64_t>(lg) * static_cast<uint64_t>(lg);
  }
  network_->CountOnly(net::MessageType::kJoin, join_msgs);
  // Repair other nodes' fingers that should now point to the new member.
  for (auto& m : ring_) {
    if (m.peer == peer) continue;
    for (auto& f : m.table.fingers()) {
      size_t si = SuccessorIndex(f.start);
      if (ring_[si].peer != f.peer) {
        f.peer = ring_[si].peer;
        f.peer_id = ring_[si].id;
      }
    }
  }
}

void ChordOverlay::RemoveMember(net::PeerId peer) {
  auto it = peer_to_index_.find(peer);
  if (it == peer_to_index_.end()) return;
  ring_.erase(ring_.begin() + static_cast<long>(it->second));
  peer_to_index_.clear();
  for (size_t i = 0; i < ring_.size(); ++i) {
    peer_to_index_[ring_[i].peer] = i;
  }
  members_cache_valid_ = false;
  // Entries pointing at the departed peer are repaired lazily by
  // maintenance (or eagerly here for tests via RefreshNode).
}

bool ChordOverlay::IsMember(net::PeerId peer) const {
  return peer_to_index_.count(peer) > 0;
}

const std::vector<net::PeerId>& ChordOverlay::members_sorted_by_id() const {
  if (!members_cache_valid_) {
    members_cache_.clear();
    members_cache_.reserve(ring_.size());
    for (const auto& m : ring_) members_cache_.push_back(m.peer);
    members_cache_valid_ = true;
  }
  return members_cache_;
}

net::PeerId ChordOverlay::ResponsibleMember(uint64_t key) const {
  if (ring_.empty()) return net::kInvalidPeer;
  return ring_[SuccessorIndex(KeyToNodeId(key))].peer;
}

std::vector<net::PeerId> ChordOverlay::ResponsibleReplicas(
    uint64_t key, uint32_t count) const {
  std::vector<net::PeerId> out;
  if (ring_.empty()) return out;
  size_t idx = SuccessorIndex(KeyToNodeId(key));
  uint32_t n = static_cast<uint32_t>(
      std::min<size_t>(count, ring_.size()));
  out.reserve(n);
  for (uint32_t k = 0; k < n; ++k) {
    out.push_back(ring_[(idx + k) % ring_.size()].peer);
  }
  return out;
}

ChordOverlay::Member* ChordOverlay::FindMember(net::PeerId peer) {
  auto it = peer_to_index_.find(peer);
  if (it == peer_to_index_.end()) return nullptr;
  return &ring_[it->second];
}

const ChordOverlay::Member* ChordOverlay::FindMember(
    net::PeerId peer) const {
  auto it = peer_to_index_.find(peer);
  if (it == peer_to_index_.end()) return nullptr;
  return &ring_[it->second];
}

bool ChordOverlay::StartLookup(net::PeerId origin, uint64_t key,
                               net::PeerId* responsible) {
  if (ring_.empty()) return false;
  assert(FindMember(origin) != nullptr && "lookup origin must be a member");
  (void)origin;
  LookupSlot& slot = lookup_slots_[CurrentLookupSlot()];
  slot.target = KeyToNodeId(key);
  slot.owner = ring_[SuccessorIndex(slot.target)].peer;
  *responsible = slot.owner;
  return true;
}

bool ChordOverlay::AtDestination(net::PeerId peer, uint64_t /*key*/) const {
  return peer == lookup_slots_[CurrentLookupSlot()].owner;
}

uint32_t ChordOverlay::LookupHopLimit() const {
  return 4 * static_cast<uint32_t>(CeilLog2(ring_.size() + 1)) + 16;
}

void ChordOverlay::NextHops(const RouteState& state, uint64_t /*key*/,
                            std::vector<RouteCandidate>* out) {
  LookupSlot& slot = lookup_slots_[CurrentLookupSlot()];
  const Member* cur = FindMember(state.cur);
  assert(cur != nullptr);
  // Table entries strictly between cur and the target, closest-preceding
  // first with ties by table index: the exact probe sequence the
  // skip-masked ClosestPreceding walk produced (duplicated peers stay
  // duplicated -- each entry is its own probe, as before).
  std::vector<HopEntry>& hop_scratch = slot.hop_scratch;
  hop_scratch.clear();
  uint32_t index = 0;
  auto consider = [&](const FingerEntry& e) {
    uint32_t my_index = index++;
    if (e.peer == net::kInvalidPeer) return;
    if (!InIntervalOpen(e.peer_id, cur->id, slot.target)) return;
    hop_scratch.push_back(
        HopEntry{RingDistance(e.peer_id, slot.target), my_index, e.peer});
  };
  for (const auto& f : cur->table.fingers()) consider(f);
  for (const auto& s : cur->table.successors()) consider(s);
  std::sort(hop_scratch.begin(), hop_scratch.end());
  // Progress: remaining clockwise distance in bits (exact log2, > 0
  // inside the open interval).  Only the weighted route-PNS scorer reads
  // it, so blind walks skip the libm call -- this loop is the innermost
  // lookup hot path.
  const bool want_progress = routing_policy().proximity;
  for (const HopEntry& e : hop_scratch) {
    const double progress =
        want_progress ? std::log2(static_cast<double>(e.dist)) : 0.0;
    // Successor-of-key detection: a hop to the key's owner ends the walk
    // (AtDestination would confirm next iteration -- same probes, same
    // success), and marking it lets the replica-failover phase spot
    // terminal-bound hops before gambling on that single peer.
    out->push_back(RouteCandidate{e.peer, progress, e.peer == slot.owner});
  }
  // Terminal-bound moment: no table entry lies inside (cur, target), so
  // cur is the key's closest predecessor and the next advance is the
  // owner itself -- which the in-interval filter above can never emit
  // (the owner sits at or past the target).  Under replica routing,
  // surface it as an explicit terminal candidate so the driver's
  // failover phase engages instead of gambling on that single peer.
  // Without replica routing the fallback scan reaches the same peer
  // (the owner is cur's immediate ring successor here) with identical
  // probe and terminal accounting, so the blind and PNS walks stay
  // byte-identical -- the recorded parity checksums depend on that.
  if (hop_scratch.empty() && routing_policy().replica_route) {
    out->push_back(RouteCandidate{slot.owner, 0.0, true});
  }
}

bool ChordOverlay::PrimaryHop(const RouteState& state, uint64_t /*key*/,
                              uint32_t k, RouteCandidate* out) {
  LookupSlot& slot = lookup_slots_[CurrentLookupSlot()];
  if (k == 0) {
    slot.primary_cur = FindMember(state.cur);
    assert(slot.primary_cur != nullptr);
    slot.primary_skip = 0;
  }
  // Try progressively less aggressive entries (skip-masked): the k-th
  // candidate is the closest preceding entry among those not yet probed
  // and found dead this hop.
  const FingerEntry* next = slot.primary_cur->table.ClosestPreceding(
      slot.primary_cur->id, slot.target, slot.primary_skip);
  if (next == nullptr) return false;
  const int idx = slot.primary_cur->table.IndexOf(next);
  if (idx >= 0 && idx < 64) slot.primary_skip |= (uint64_t{1} << idx);
  out->peer = next->peer;
  out->progress = 0.0;  // unread on the blind path
  // Terminal iff the entry is the key's owner (successor-of-key): the
  // walk would stop there via AtDestination anyway, with identical
  // message and success accounting.
  out->terminal = next->peer == slot.owner;
  return true;
}

bool ChordOverlay::FallbackHop(const RouteState& state, uint64_t /*key*/,
                               uint32_t k, RouteCandidate* out) {
  // Every table entry toward the key is stale (or the table is empty):
  // walk ring successors in order -- linear but guaranteed.  An offline
  // owner is scanned past: its keys are served by its first online
  // successor, and a step at or past the target is terminal.
  LookupSlot& slot = lookup_slots_[CurrentLookupSlot()];
  if (k == 0) slot.fallback_base = peer_to_index_.at(state.cur);
  if (k + 1 >= ring_.size()) return false;
  const Member& cand = ring_[(slot.fallback_base + 1 + k) % ring_.size()];
  out->peer = cand.peer;
  out->progress = static_cast<double>(k);  // ring order is not reorderable
  out->terminal = InIntervalOpenClosed(slot.target,
                                       ring_[slot.fallback_base].id, cand.id);
  return true;
}

FingerTable* ChordOverlay::TableOf(net::PeerId peer) {
  Member* m = FindMember(peer);
  return m == nullptr ? nullptr : &m->table;
}

const FingerTable* ChordOverlay::TableOf(net::PeerId peer) const {
  const Member* m = FindMember(peer);
  return m == nullptr ? nullptr : &m->table;
}

void ChordOverlay::RefreshNode(net::PeerId peer) {
  Member* m = FindMember(peer);
  if (m != nullptr) BuildTable(*m);
}

void ChordOverlay::RepairFinger(net::PeerId peer, size_t idx) {
  Member* m = FindMember(peer);
  if (m == nullptr) return;
  auto& fingers = m->table.fingers();
  if (idx < fingers.size()) {
    size_t si = SuccessorIndex(fingers[idx].start);
    // Point at the first *online* member at or after the finger start so
    // the repair actually removes the staleness.
    for (size_t k = 0; k < ring_.size(); ++k) {
      const Member& cand = ring_[(si + k) % ring_.size()];
      if (network_->IsOnline(cand.peer) || k + 1 == ring_.size()) {
        fingers[idx].peer = cand.peer;
        fingers[idx].peer_id = cand.id;
        break;
      }
    }
    return;
  }
  idx -= fingers.size();
  auto& succ = m->table.successors();
  if (idx < succ.size()) {
    // Rebuild the successor list from the next *online* members so the
    // repair actually removes staleness (an offline successor would be
    // re-detected immediately).
    size_t my_idx = peer_to_index_.at(peer);
    succ.clear();
    for (size_t k = 1;
         k < ring_.size() && succ.size() < successor_list_size_; ++k) {
      const Member& s = ring_[(my_idx + k) % ring_.size()];
      if (!network_->IsOnline(s.peer)) continue;
      succ.push_back(FingerEntry{s.id, s.peer, s.id});
    }
  }
}

double ChordOverlay::StaleFingerFraction() const {
  uint64_t total = 0;
  uint64_t stale = 0;
  for (const auto& m : ring_) {
    if (!network_->IsOnline(m.peer)) continue;
    for (const auto& f : m.table.fingers()) {
      ++total;
      if (!network_->IsOnline(f.peer)) ++stale;
    }
    for (const auto& s : m.table.successors()) {
      ++total;
      if (!network_->IsOnline(s.peer)) ++stale;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(stale) / static_cast<double>(total);
}

std::string ChordOverlay::CheckInvariants() const {
  std::ostringstream err;
  for (size_t i = 1; i < ring_.size(); ++i) {
    if (!(ring_[i - 1].id < ring_[i].id)) {
      err << "ring not strictly sorted at index " << i;
      return err.str();
    }
  }
  for (const auto& [peer, idx] : peer_to_index_) {
    if (idx >= ring_.size() || ring_[idx].peer != peer) {
      err << "peer_to_index_ inconsistent for peer " << peer;
      return err.str();
    }
  }
  return "";
}

}  // namespace pdht::overlay
