// Kademlia-style XOR-metric structured overlay [MaMa02] ("Kademlia: a
// peer-to-peer information system based on the XOR metric").
//
// The fourth backend behind StructuredOverlay, added to prove the factory
// seam: PdhtSystem has no Kademlia-specific code -- the backend exists
// only here and in the registry (structured_overlay.cc).
//
// Members keep k-buckets: bucket b of node n holds up to k contacts whose
// ids differ from n's id first at bit b (i.e. XOR distance in
// [2^b, 2^(b+1))).  A key is owned by the member whose id minimizes
// id XOR KeyToNodeId(key).  Routing greedily forwards to the known
// contact closest to the target, halving the XOR distance per hop in
// expectation -- O(log n) hops, the same cSIndx regime as Chord/P-Grid
// but over a symmetric (unidirectional-metric) id space rather than a
// ring.  Churn handling mirrors the other overlays: sends to offline
// contacts are counted and lost; when greedy progress stalls, routing
// falls back to scanning the membership in XOR order, so lookups on keys
// with an offline owner terminate at the owner's closest *online*
// stand-in.
//
// Proximity-aware neighbor selection (PNS): all candidates of one
// k-bucket are interchangeable for routing progress (any of them steps
// the XOR distance below 2^b), so when the base-class PeerRtt hook is
// installed the k kept out of an over-full bucket are the lowest-RTT
// ones -- and bucket repair swaps in the lowest-RTT online replacement
// -- instead of a uniformly random choice.  Hop *counts* are unchanged
// in expectation; per-hop link latency drops, which bench_latency
// quantifies as the routing-stretch win.  Without the hook, selection is
// byte-identical to the RTT-blind behaviour.

#ifndef PDHT_OVERLAY_DHT_KADEMLIA_H_
#define PDHT_OVERLAY_DHT_KADEMLIA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "overlay/dht/id.h"
#include "overlay/structured_overlay.h"
#include "util/rng.h"

namespace pdht::overlay {

class KademliaOverlay : public StructuredOverlay {
 public:
  /// `network` must outlive the overlay.  `bucket_size` is Kademlia's k:
  /// redundant contacts per bucket for routing around failures.  `alpha`
  /// is the bounded lookup parallelism: the routing driver probes up to
  /// alpha closer contacts per hop round (alpha-concurrent iterative
  /// lookup); 1 keeps the sequential walk bit-for-bit.
  KademliaOverlay(net::Network* network, Rng rng, uint32_t bucket_size = 8,
                  uint32_t alpha = 1);

  void SetMembers(const std::vector<net::PeerId>& members) override;
  bool IsMember(net::PeerId peer) const override;
  size_t num_members() const override { return nodes_.size(); }
  /// Members sorted by node id (stable order, like Chord's ring order).
  const std::vector<net::PeerId>& members() const override {
    return member_list_;
  }

  /// The member whose id minimizes id XOR KeyToNodeId(key).
  net::PeerId ResponsibleMember(uint64_t key) const override;

  // Routing-engine contract: primary candidates are the known contacts
  // strictly closer (XOR) to the target, nearest first; the recovery
  // scan walks the whole membership in XOR order and terminates at the
  // walk's own peer when it is the closest online member (stand-in).
  bool StartLookup(net::PeerId origin, uint64_t key,
                   net::PeerId* responsible) override;
  bool AtDestination(net::PeerId peer, uint64_t key) const override;
  uint32_t LookupHopLimit() const override;
  void NextHops(const RouteState& state, uint64_t key,
                std::vector<RouteCandidate>* out) override;
  bool FallbackHop(const RouteState& state, uint64_t key, uint32_t k,
                   RouteCandidate* out) override;
  bool LenientHopLimit() const override { return true; }
  uint32_t LookupParallelism() const override { return alpha_; }

  /// Probe-based bucket maintenance (env semantics as elsewhere): probes
  /// random contacts, replaces detected-offline ones with an online
  /// member of the same bucket (repair is free / piggybacked).
  uint64_t RunMaintenanceRound(double env) override;

  /// Sharded maintenance (plan/execute/publish, see StructuredOverlay):
  /// plan consumes the fractional budget map serially in member order,
  /// execute probes/repairs one member's buckets with the task Rng
  /// (in-place contact swaps -- bucket sizes never change mid-phase).
  bool has_sharded_maintenance() const override { return true; }
  uint32_t PlanMaintenanceRound(double env) override;
  void ExecuteMaintenanceTask(uint32_t task, Rng& rng) override;
  uint64_t FinishMaintenanceRound() override;

  /// Rejoin refresh: rebuilds the peer's buckets from current membership.
  void OnPeerRejoin(net::PeerId peer) override { RefreshNode(peer); }

  /// Bucket rebuild draws (the over-full shuffle) route through the
  /// caller's Rng, so distinct peers rebuild concurrently without
  /// touching the shared stream.
  bool has_sharded_rejoin() const override { return true; }
  void RejoinNode(net::PeerId peer, Rng& rng) override {
    if (nodes_.count(peer) > 0) BuildBuckets(peer, rng);
  }

  void RefreshNode(net::PeerId peer);

  /// Order-sensitive hash over every member's buckets (determinism-test
  /// hook).
  uint64_t RoutingFingerprint() const override;

  /// Total contacts of `peer` across buckets (for maintenance sizing).
  size_t TableSize(net::PeerId peer) const;

  /// Flat copy of `peer`'s routing table (bucket order).  Test support
  /// for the proximity-selection behaviour; empty for non-members.
  std::vector<net::PeerId> ContactsOf(net::PeerId peer) const;

  /// Bucket and id-space invariants: ids sorted/unique, every contact a
  /// member filed in the bucket its XOR distance demands, buckets within
  /// capacity.  Empty string when consistent.  Test-support API.
  std::string CheckInvariants() const override;

 private:
  struct NodeState {
    NodeId id = 0;
    /// buckets[b]: up to bucket_size_ contacts first differing at bit b
    /// (b = 63 is the far half of the id space, b = 0 the immediate
    /// sibling).  Empty buckets are kept empty, not erased.
    std::vector<std::vector<net::PeerId>> buckets;
  };

  /// Rebuilds `peer`'s buckets; the over-full shuffle draws from `rng`
  /// (serial callers pass rng_, sharded rejoin passes a per-peer stream).
  void BuildBuckets(net::PeerId peer, Rng& rng);
  /// One member's probe round against its own buckets, drawing from
  /// `rng`; shared by the serial and sharded maintenance paths.  Returns
  /// probes sent.
  uint64_t ProbeMember(net::PeerId peer, uint32_t probes, Rng& rng);
  /// Members whose id differs from `id` first at bit `bucket`.
  std::vector<net::PeerId> BucketCandidates(NodeId id, int bucket) const;
  /// The member id-closest (XOR) to `target`; kInvalidPeer when empty.
  net::PeerId ClosestMemberTo(NodeId target) const;

  Rng rng_;
  uint32_t bucket_size_;
  uint32_t alpha_;
  std::unordered_map<net::PeerId, NodeState> nodes_;
  std::vector<net::PeerId> member_list_;  // sorted by node id
  std::vector<NodeId> sorted_ids_;        // parallel to member_list_
  std::unordered_map<net::PeerId, double> probe_budget_;

  /// Sharded-maintenance round state (plan -> execute -> finish).
  struct MaintTask {
    net::PeerId peer = net::kInvalidPeer;
    uint32_t probes = 0;
  };
  std::vector<MaintTask> maint_tasks_;
  std::vector<uint64_t> maint_task_probes_;  // parallel to maint_tasks_

  /// Per-lookup routing state, one entry per lookup slot (set in
  /// StartLookup; concurrent walks each run under their own
  /// CurrentLookupSlot and only read the shared buckets/member list).
  struct LookupSlot {
    NodeId target = 0;
    net::PeerId owner = net::kInvalidPeer;
    /// Lookup scratch (candidates sorted by XOR distance), reused across
    /// hops so routing never allocates in the steady state.
    std::vector<std::pair<NodeId, net::PeerId>> closer_scratch;
    /// Scratch for the greedy-exhausted fallback (full membership in XOR
    /// order) -- hit on every lookup whose owner is offline.  Built on
    /// the k == 0 FallbackHop call of a stalled hop, then indexed.
    std::vector<std::pair<NodeId, net::PeerId>> by_dist_scratch;
  };
  std::vector<LookupSlot> lookup_slots_{1};
  void ResizeLookupSlots(uint32_t n) override { lookup_slots_.resize(n); }
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_DHT_KADEMLIA_H_
