#include "overlay/dht/maintenance.h"

#include <cmath>

namespace pdht::overlay {

ChordMaintenance::ChordMaintenance(ChordOverlay* overlay,
                                   net::Network* network, double env,
                                   Rng rng)
    : overlay_(overlay), network_(network), env_(env), rng_(rng) {}

double ChordMaintenance::ExpectedProbesPerPeer(net::PeerId peer) const {
  const FingerTable* table = overlay_->TableOf(peer);
  if (table == nullptr) return 0.0;
  return env_ * static_cast<double>(table->size());
}

void ChordMaintenance::RunRound() {
  for (net::PeerId peer : overlay_->members_sorted_by_id()) {
    if (!network_->IsOnline(peer)) continue;
    FingerTable* table = overlay_->TableOf(peer);
    if (table == nullptr || table->size() == 0) continue;
    // Accumulate this round's probe budget; spend whole probes.
    double& budget = budget_[peer];
    budget += env_ * static_cast<double>(table->size());
    while (budget >= 1.0) {
      budget -= 1.0;
      size_t total = table->size();
      size_t idx = static_cast<size_t>(rng_.UniformU64(total));
      const FingerEntry& entry =
          idx < table->fingers().size()
              ? table->fingers()[idx]
              : table->successors()[idx - table->fingers().size()];
      if (entry.peer == net::kInvalidPeer) continue;
      net::Message probe;
      probe.type = net::MessageType::kRoutingProbe;
      probe.from = peer;
      probe.to = entry.peer;
      network_->Send(probe);
      ++stats_.probes_sent;
      if (!network_->IsOnline(entry.peer)) {
        ++stats_.stale_detected;
        // Repair is free (piggybacked), per the paper's assumption.
        overlay_->RepairFinger(peer, idx);
        ++stats_.repairs;
      }
    }
  }
}

void ChordMaintenance::OnPeerRejoin(net::PeerId peer) {
  overlay_->RefreshNode(peer);
}

}  // namespace pdht::overlay
