#include "overlay/dht/maintenance.h"

#include <cmath>

namespace pdht::overlay {

ChordMaintenance::ChordMaintenance(ChordOverlay* overlay,
                                   net::Network* network, double env,
                                   Rng rng)
    : overlay_(overlay), network_(network), env_(env), rng_(rng) {}

double ChordMaintenance::ExpectedProbesPerPeer(net::PeerId peer) const {
  const FingerTable* table = overlay_->TableOf(peer);
  if (table == nullptr) return 0.0;
  return env_ * static_cast<double>(table->size());
}

void ChordMaintenance::RunRound() {
  for (net::PeerId peer : overlay_->members_sorted_by_id()) {
    if (!network_->IsOnline(peer)) continue;
    FingerTable* table = overlay_->TableOf(peer);
    if (table == nullptr || table->size() == 0) continue;
    // Accumulate this round's probe budget; spend whole probes.
    double& budget = budget_[peer];
    budget += env_ * static_cast<double>(table->size());
    while (budget >= 1.0) {
      budget -= 1.0;
      size_t total = table->size();
      size_t idx = static_cast<size_t>(rng_.UniformU64(total));
      const FingerEntry& entry =
          idx < table->fingers().size()
              ? table->fingers()[idx]
              : table->successors()[idx - table->fingers().size()];
      if (entry.peer == net::kInvalidPeer) continue;
      net::Message probe;
      probe.type = net::MessageType::kRoutingProbe;
      probe.from = peer;
      probe.to = entry.peer;
      network_->Send(probe);
      ++stats_.probes_sent;
      if (!network_->IsOnline(entry.peer)) {
        ++stats_.stale_detected;
        // Repair is free (piggybacked), per the paper's assumption.
        overlay_->RepairFinger(peer, idx);
        ++stats_.repairs;
      }
    }
  }
}

uint32_t ChordMaintenance::PlanRound() {
  tasks_.clear();
  for (net::PeerId peer : overlay_->members_sorted_by_id()) {
    if (!network_->IsOnline(peer)) continue;
    const FingerTable* table = overlay_->TableOf(peer);
    if (table == nullptr || table->size() == 0) continue;
    double& budget = budget_[peer];
    budget += env_ * static_cast<double>(table->size());
    // The whole-probe count is frozen here (the serial loop re-reads the
    // table size per probe, so repairs that shrink a successor list mid
    // round shift its budget; the sharded stream accrues at round-start
    // sizes -- a different, equally valid stream).
    const uint32_t probes = static_cast<uint32_t>(budget);
    budget -= static_cast<double>(probes);
    if (probes > 0) tasks_.push_back(MaintTask{peer, probes});
  }
  task_stats_.assign(tasks_.size(), TaskStats{});
  return static_cast<uint32_t>(tasks_.size());
}

void ChordMaintenance::ExecuteTask(uint32_t task, Rng& rng) {
  const MaintTask& t = tasks_[task];
  FingerTable* table = overlay_->TableOf(t.peer);
  TaskStats& ts = task_stats_[task];
  for (uint32_t i = 0; i < t.probes; ++i) {
    // Per-probe size sampling stays inside the owning task: successor
    // repair can shrink this member's own list mid-task, and only this
    // task mutates it.
    const size_t total = table->size();
    if (total == 0) break;
    const size_t idx = static_cast<size_t>(rng.UniformU64(total));
    const FingerEntry& entry =
        idx < table->fingers().size()
            ? table->fingers()[idx]
            : table->successors()[idx - table->fingers().size()];
    if (entry.peer == net::kInvalidPeer) continue;
    net::Message probe;
    probe.type = net::MessageType::kRoutingProbe;
    probe.from = t.peer;
    probe.to = entry.peer;
    network_->Send(probe);
    ++ts.probes;
    if (!network_->IsOnline(entry.peer)) {
      ++ts.stale;
      overlay_->RepairFinger(t.peer, idx);
      ++ts.repairs;
    }
  }
}

uint64_t ChordMaintenance::FinishRound() {
  uint64_t probes = 0;
  for (const TaskStats& ts : task_stats_) {
    stats_.probes_sent += ts.probes;
    stats_.stale_detected += ts.stale;
    stats_.repairs += ts.repairs;
    probes += ts.probes;
  }
  tasks_.clear();
  task_stats_.clear();
  return probes;
}

void ChordMaintenance::OnPeerRejoin(net::PeerId peer) {
  overlay_->RefreshNode(peer);
}

}  // namespace pdht::overlay
