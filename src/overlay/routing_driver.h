// Shared hop-by-hop routing engine for the structured overlays.
//
// Every backend used to bury its lookup walk inside a monolithic
// Lookup(origin, key), so cross-cutting routing policies (latency-aware
// next-hop choice, timeout-aware failed-probe costing, per-hop
// instrumentation) would have had to be implemented four times.  This is
// the same seam move as net::DeliveryModel one layer up: backends are now
// pure *candidate generators* -- "from this peer, try these next hops, in
// this order" -- and RoutingDriver owns the walk itself: it probes
// candidates (one kDhtLookup per attempt on the shared Network, design
// decision #5), advances to the first online one, applies the
// cross-backend policies, and assembles the LookupResult under one
// documented contract (see structured_overlay.h).
//
// The walk, per hop:
//  1. destination check (StructuredOverlay::AtDestination) and hop budget
//     (LookupHopLimit);
//  2. primary candidates (NextHops), probed in emission order -- in
//     batches of LookupParallelism() when the backend requests a bounded
//     alpha-concurrent walk (Kademlia);
//  3. on exhaustion, fallback candidates (FallbackHop), generated one at
//     a time so O(n) recovery scans stay lazy exactly like the monolithic
//     walks they replaced.  A fallback candidate equal to the current
//     peer means "the walk ends here" (Kademlia's closest-online stand-in
//     terminates without a message).
//
// Policies (RoutingPolicy, installed by PdhtSystem from SystemConfig):
//  * proximity -- route-time PNS, two modes chosen by the backend's
//    ProgressWeightMs(): at 0 (default), within each maximal run of
//    *equal-progress* primary candidates, probe the lowest-RTT link
//    first -- never reordering across progress groups; at > 0
//    (weighted mode, Chord), primary candidates re-sort globally by
//    one-way RTT + weight * progress, so a backend must only opt in
//    when any primary-candidate order is correct.  Fallback candidates
//    are never reordered in either mode, so correctness-ordering of
//    the recovery scans (Chord's ring scan, Kademlia's XOR-order
//    stand-in scan) is preserved.
//  * timeout_costing -- a probe to an offline peer is no longer free in
//    latency terms: each fully-failed probe round charges the delivery
//    model's ProbeTimeoutSeconds through Network::ChargeProbeTimeout
//    (counted under "net.timeout" and folded into the per-lookup RTT
//    brackets).  With parallelism > 1 the alpha probes of a batch time
//    out concurrently, so a fully-failed batch charges one timeout, not
//    alpha.  With an adaptive RTO estimator installed on the delivery
//    model (net/rtt_estimator.h) the charged wait is per-link, not the
//    fixed LatencyConfig::timeout_ms.
//  * replica_route -- latency-aware replica failover at the terminal
//    hop: when a hop is about to end the walk (a terminal candidate, or
//    the responsible member itself, leads the candidate list), the
//    driver instead probes the key's replica group (StructuredOverlay::
//    ResponsiblePeersInto) cheapest-live-link-first and advances to the
//    first live replica as a terminal step; dead replicas are skipped
//    (tallied under "net.failover" and LookupResult::failovers) instead
//    of failing the lookup, and a walk whose candidates are exhausted
//    gets one replica pass as a rescue before being declared dead.
//    Probing runs in the same alpha batches as the primary phase, so a
//    fully-dead batch charges ONE shared timeout.
//
// With both policies off and parallelism 1 the driver reproduces every
// backend's pre-refactor walk bit-for-bit: same probe order, same
// messages, same hops (enforced by the recorded checksums in
// tests/overlay/backend_parity_test.cc and the golden-series suite).
// Scratch buffers are reused across hops and lookups, so steady-state
// routing does not allocate (bench_perf_roundloop guards this).

#ifndef PDHT_OVERLAY_ROUTING_DRIVER_H_
#define PDHT_OVERLAY_ROUTING_DRIVER_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/network.h"

namespace pdht::overlay {

class StructuredOverlay;
struct LookupResult;

/// Lookup slots: concurrent lookups (the sharded round engine's parallel
/// query phase) each run under a distinct slot index, selected per worker
/// thread via this thread-local.  All per-lookup state -- the driver's
/// candidate scratch and every backend's StartLookup-scoped fields --
/// lives in per-slot arrays indexed by CurrentLookupSlot(), so workers
/// never touch each other's walks while sharing one overlay instance
/// (whose tables they only read).  Slot 0 is the default; single-threaded
/// code never needs to call these.
uint32_t CurrentLookupSlot();
void SetCurrentLookupSlot(uint32_t slot);

/// One next-hop proposal from a backend's candidate generator.
struct RouteCandidate {
  net::PeerId peer = net::kInvalidPeer;
  /// Backend-defined progress metric, lower = better.  In the default
  /// route-PNS mode candidates with *equal* progress are interchangeable
  /// (the unit the policy may reorder within) and unequal values are
  /// never compared -- probe preference is emission order.  Backends
  /// opting into weighted route-PNS (ProgressWeightMs() > 0) instead
  /// have all primary candidates scored as rtt + weight * progress.
  /// Blind walks never read it.
  double progress = 0.0;
  /// Advancing to this candidate ends routing (Chord's ring-scan step at
  /// or past the target lands on the owner's live successor).
  bool terminal = false;
};

/// Per-lookup walk state handed to the candidate generators.
struct RouteState {
  net::PeerId origin = net::kInvalidPeer;
  net::PeerId cur = net::kInvalidPeer;
  uint32_t hops = 0;  ///< successful advances so far (== probe tag)
};

/// Cross-backend routing policies; installed once per overlay by
/// PdhtSystem (StructuredOverlay::SetRoutingPolicy).  Defaults reproduce
/// the blind pre-refactor walk.
struct RoutingPolicy {
  /// Route-time proximity next-hop selection (PNS at lookup time): prefer
  /// the lowest-RTT candidate among equal-progress next hops.  Requires
  /// `rtt`.
  bool proximity = false;
  /// Charge the delivery model's probe timeout for failed probe rounds
  /// (Network::ChargeProbeTimeout); off = failed probes cost messages but
  /// no latency, the pre-refactor behaviour.
  bool timeout_costing = false;
  /// Latency-aware replica failover at the terminal hop (see the header
  /// comment): route to the cheapest live replica of the key's group and
  /// fail over past dead ones instead of failing the lookup.  Requires
  /// replica_count > 0; cheapest-first ordering needs `rtt` (the group's
  /// own order, responsible member first, is used without it).
  bool replica_route = false;
  /// Replica-group size consulted by replica_route (the system's
  /// replication factor).  0 disables the policy.
  uint32_t replica_count = 0;
  /// Link-RTT oracle in milliseconds (symmetric), e.g. DeliveryModel::
  /// RttMs.  Consulted per candidate per hop when `proximity`, per
  /// replica at terminal hops when `replica_route`, and -- whenever
  /// installed -- once per advance to record LookupResult's per-hop RTT
  /// trace.
  std::function<double(net::PeerId, net::PeerId)> rtt;
};

/// The shared iterative walk.  One driver instance lives inside each
/// StructuredOverlay; Route is re-entrant per overlay instance only in
/// the sense the simulator needs (single-threaded per system).
class RoutingDriver {
 public:
  /// `network` must outlive the driver (it is the overlay's network).
  explicit RoutingDriver(net::Network* network);

  void set_policy(RoutingPolicy policy) { policy_ = std::move(policy); }
  const RoutingPolicy& policy() const { return policy_; }

  /// Sizes the per-slot scratch (see CurrentLookupSlot above); keeps at
  /// least one slot.
  void SetSlots(uint32_t n);
  uint32_t num_slots() const {
    return static_cast<uint32_t>(slots_.size());
  }

  /// Routes from `origin` (must be a member of `overlay`) toward `key`'s
  /// owner.  Implements StructuredOverlay::Lookup; see the LookupResult
  /// contract in structured_overlay.h.
  LookupResult Route(StructuredOverlay& overlay, net::PeerId origin,
                     uint64_t key);

 private:
  // Scratch reused across hops/lookups: routing never allocates in the
  // steady state.  One Scratch per lookup slot (concurrent walks).
  struct Scratch {
    std::vector<RouteCandidate> candidates;
    std::vector<std::pair<double, uint32_t>> rank;
    std::vector<RouteCandidate> reorder;
    std::vector<net::PeerId> replicas;       ///< key's replica group
    std::vector<net::PeerId> replica_order;  ///< cheapest-first probe order
  };

  /// Within each maximal run of equal-progress candidates, reorder by
  /// (rtt, emission order) -- deterministic under RTT ties.
  void ReorderEqualProgressByRtt(Scratch& s, net::PeerId cur);

  /// Weighted route-PNS (ProgressWeightMs() > 0 backends): stable-sort
  /// all primary candidates by one-way RTT + weight * progress, so the
  /// walk trades progress for cheap links only when it pays.
  void SortByLatencyCost(Scratch& s, net::PeerId cur, double weight_ms);

  net::Network* network_;  ///< not owned
  RoutingPolicy policy_;
  std::vector<Scratch> slots_;
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_ROUTING_DRIVER_H_
