#include "overlay/pgrid/pgrid.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <sstream>

#include "overlay/dht/id.h"
#include "util/bits.h"
#include "util/hash.h"

namespace pdht::overlay {

PGridOverlay::PGridOverlay(net::Network* network, Rng rng, PGridConfig config)
    : StructuredOverlay(network), rng_(rng), config_(config) {
  assert(config_.refs_per_level >= 1);
  assert(config_.max_leaf_peers >= 1);
}

void PGridOverlay::SetMembers(const std::vector<net::PeerId>& members) {
  paths_.clear();
  member_list_ = members;
  probe_budget_.clear();
  if (members.empty()) return;
  // Recursive halving: split the (shuffled) member set until groups are at
  // most max_leaf_peers, assigning '0' to one half and '1' to the other.
  std::vector<net::PeerId> shuffled = members;
  rng_.Shuffle(shuffled.data(), shuffled.size());
  std::function<void(size_t, size_t, TriePath)> assign =
      [&](size_t lo, size_t hi, TriePath path) {
        size_t n = hi - lo;
        if (n <= config_.max_leaf_peers || path.length() >= 62) {
          for (size_t i = lo; i < hi; ++i) {
            paths_[shuffled[i]] = NodeState{path, {}};
          }
          return;
        }
        size_t mid = lo + n / 2;
        assign(lo, mid, path.Child(0));
        assign(mid, hi, path.Child(1));
      };
  assign(0, shuffled.size(), TriePath{});
  BuildRoutingTables();
}

uint64_t PGridOverlay::BuildByExchanges(
    const std::vector<net::PeerId>& members, uint64_t max_exchanges) {
  paths_.clear();
  member_list_ = members;
  probe_budget_.clear();
  for (net::PeerId p : members) paths_[p] = NodeState{TriePath{}, {}};
  if (members.size() < 2) return 0;

  // P-Grid bootstrap: random pairwise meetings.  When two peers with the
  // same path meet, they split (one takes '0', the other '1') provided the
  // leaf population allows it; when their paths diverge they recurse into
  // referencing each other (we only track paths here; references are
  // rebuilt after convergence).  Splitting stops when a peer's leaf group
  // would drop below max_leaf_peers coverage of the opposite side, which
  // we approximate with a target depth of ceil(log2(n / max_leaf_peers)).
  const int target_depth = CeilLog2(
      std::max<uint64_t>(1, members.size() / config_.max_leaf_peers));
  uint64_t exchanges = 0;
  uint64_t stable_streak = 0;
  while (exchanges < max_exchanges && stable_streak < members.size() * 4) {
    net::PeerId a = members[rng_.UniformU64(members.size())];
    net::PeerId b = members[rng_.UniformU64(members.size())];
    if (a == b) continue;
    ++exchanges;
    network_->CountOnly(net::MessageType::kExchange, 1);
    NodeState& sa = paths_[a];
    NodeState& sb = paths_[b];
    // Meet at the longest common prefix of the two paths.
    int cpl = 0;
    int max_cpl = std::min(sa.path.length(), sb.path.length());
    while (cpl < max_cpl && sa.path.Bit(cpl) == sb.path.Bit(cpl)) ++cpl;
    bool a_ends = cpl == sa.path.length();
    bool b_ends = cpl == sb.path.length();
    if (a_ends && b_ends) {
      // Same path: split if below target depth.
      if (sa.path.length() < target_depth) {
        sa.path = sa.path.Child(0);
        sb.path = sb.path.Child(1);
        stable_streak = 0;
      } else {
        ++stable_streak;
      }
    } else if (a_ends != b_ends) {
      // One path is a strict prefix of the other: the shallower peer
      // specializes to the unoccupied side.
      NodeState& shallow = a_ends ? sa : sb;
      NodeState& deep = a_ends ? sb : sa;
      int bit = deep.path.Bit(cpl);
      shallow.path = shallow.path.Child(1 - bit);
      stable_streak = 0;
    } else {
      ++stable_streak;  // diverged: reference exchange only
    }
  }
  BuildRoutingTables();
  return exchanges;
}

std::vector<net::PeerId> PGridOverlay::PeersUnder(
    const TriePath& prefix) const {
  std::vector<net::PeerId> out;
  for (const auto& [peer, st] : paths_) {
    if (prefix.IsPrefixOf(st.path)) out.push_back(peer);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void PGridOverlay::BuildRefsFor(net::PeerId peer) {
  NodeState& st = paths_[peer];
  st.levels.assign(static_cast<size_t>(st.path.length()), LevelRefs{});
  for (int l = 0; l < st.path.length(); ++l) {
    // Candidates: peers under the sibling prefix at level l.
    std::vector<net::PeerId> cands = PeersUnder(st.path.SiblingAt(l));
    rng_.Shuffle(cands.data(), cands.size());
    uint32_t want = std::min<uint32_t>(config_.refs_per_level,
                                       static_cast<uint32_t>(cands.size()));
    st.levels[l].refs.assign(cands.begin(), cands.begin() + want);
  }
}

void PGridOverlay::BuildRoutingTables() {
  for (auto& [peer, st] : paths_) {
    (void)st;
    BuildRefsFor(peer);
  }
}

bool PGridOverlay::IsMember(net::PeerId peer) const {
  return paths_.count(peer) > 0;
}

const TriePath& PGridOverlay::PathOf(net::PeerId peer) const {
  static const TriePath kEmpty;
  auto it = paths_.find(peer);
  return it == paths_.end() ? kEmpty : it->second.path;
}

std::vector<net::PeerId> PGridOverlay::ResponsiblePeers(uint64_t key) const {
  std::vector<net::PeerId> out;
  ResponsiblePeersInto(key, std::numeric_limits<uint32_t>::max(), &out);
  return out;
}

void PGridOverlay::ResponsiblePeersInto(
    uint64_t key, uint32_t count, std::vector<net::PeerId>* out) const {
  uint64_t key_id = KeyToNodeId(key);
  out->clear();
  for (const auto& [peer, st] : paths_) {
    if (st.path.IsPrefixOfKey(key_id)) out->push_back(peer);
  }
  std::sort(out->begin(), out->end());
  if (out->size() > count) out->resize(count);
}

net::PeerId PGridOverlay::ResponsibleMember(uint64_t key) const {
  // Smallest peer id of the responsible leaf group (the same
  // representative ResponsiblePeers(key).front() used to yield), found
  // without materializing the group.
  uint64_t key_id = KeyToNodeId(key);
  net::PeerId best = net::kInvalidPeer;
  for (const auto& [peer, st] : paths_) {
    if (peer < best && st.path.IsPrefixOfKey(key_id)) best = peer;
  }
  return best;
}

bool PGridOverlay::StartLookup(net::PeerId origin, uint64_t key,
                               net::PeerId* responsible) {
  if (paths_.empty()) return false;
  assert(paths_.count(origin) > 0 && "lookup origin must be a member");
  (void)origin;
  lookup_slots_[CurrentLookupSlot()].key_id = KeyToNodeId(key);
  *responsible = ResponsibleMember(key);
  return true;
}

bool PGridOverlay::AtDestination(net::PeerId peer, uint64_t /*key*/) const {
  return paths_.at(peer).path.IsPrefixOfKey(
      lookup_slots_[CurrentLookupSlot()].key_id);
}

uint32_t PGridOverlay::LookupHopLimit() const { return 64 + 16; }

void PGridOverlay::NextHops(const RouteState& state, uint64_t /*key*/,
                            std::vector<RouteCandidate>* out) {
  const NodeState& st = paths_.at(state.cur);
  // References at the first differing level; all point to the key's side
  // of the trie and land >= 1 level deeper, so they form one progress
  // class (interchangeable for route-time PNS).
  int l = st.path.CommonPrefixWithKey(
      lookup_slots_[CurrentLookupSlot()].key_id);
  assert(l < static_cast<int>(st.levels.size()));
  for (net::PeerId ref : st.levels[static_cast<size_t>(l)].refs) {
    out->push_back(RouteCandidate{ref, static_cast<double>(l), false});
  }
}

size_t PGridOverlay::TableSize(net::PeerId peer) const {
  auto it = paths_.find(peer);
  if (it == paths_.end()) return 0;
  size_t total = 0;
  for (const auto& lvl : it->second.levels) total += lvl.refs.size();
  return total;
}

uint64_t PGridOverlay::RunMaintenanceRound(double env) {
  uint64_t probes = 0;
  for (net::PeerId peer : member_list_) {
    if (!network_->IsOnline(peer)) continue;
    NodeState& st = paths_[peer];
    size_t table = TableSize(peer);
    if (table == 0) continue;
    double& budget = probe_budget_[peer];
    budget += env * static_cast<double>(table);
    while (budget >= 1.0) {
      budget -= 1.0;
      // Pick a random reference uniformly across levels.
      size_t idx = rng_.UniformU64(table);
      for (auto& lvl : st.levels) {
        if (idx < lvl.refs.size()) {
          net::PeerId target = lvl.refs[idx];
          net::Message probe;
          probe.type = net::MessageType::kRoutingProbe;
          probe.from = peer;
          probe.to = target;
          network_->Send(probe);
          ++probes;
          if (!network_->IsOnline(target)) {
            // Re-pick a live peer from the same sibling subtree (repair is
            // free, piggybacked -- same assumption as ChordMaintenance).
            int level = static_cast<int>(&lvl - st.levels.data());
            auto cands = PeersUnder(st.path.SiblingAt(level));
            for (int a = 0; a < 16 && !cands.empty(); ++a) {
              net::PeerId cand = cands[rng_.UniformU64(cands.size())];
              if (network_->IsOnline(cand) && cand != target) {
                lvl.refs[idx] = cand;
                break;
              }
            }
          }
          break;
        }
        idx -= lvl.refs.size();
      }
    }
  }
  return probes;
}

uint32_t PGridOverlay::PlanMaintenanceRound(double env) {
  // Same budget accrual as the serial round, in the same member order;
  // whole probes are frozen at round-start table sizes.  The plan draws
  // no randomness, so rng_ advances identically whichever engine runs
  // maintenance for a given configuration.
  maint_tasks_.clear();
  for (net::PeerId peer : member_list_) {
    if (!network_->IsOnline(peer)) continue;
    const size_t table = TableSize(peer);
    if (table == 0) continue;
    double& budget = probe_budget_[peer];
    budget += env * static_cast<double>(table);
    const uint32_t probes = static_cast<uint32_t>(budget);
    budget -= static_cast<double>(probes);
    if (probes > 0) maint_tasks_.push_back(MaintTask{peer, probes});
  }
  return static_cast<uint32_t>(maint_tasks_.size());
}

void PGridOverlay::ExecuteMaintenanceTask(uint32_t task, Rng& rng) {
  const MaintTask& t = maint_tasks_[task];
  auto pit = paths_.find(t.peer);
  assert(pit != paths_.end());
  NodeState& st = pit->second;
  size_t table = 0;
  for (const auto& lvl : st.levels) table += lvl.refs.size();
  if (table == 0) return;
  for (uint32_t p = 0; p < t.probes; ++p) {
    // Pick a random reference uniformly across levels (as the serial
    // round does), drawing from the caller Rng only.
    size_t idx = rng.UniformU64(table);
    for (auto& lvl : st.levels) {
      if (idx < lvl.refs.size()) {
        net::PeerId target = lvl.refs[idx];
        net::Message probe;
        probe.type = net::MessageType::kRoutingProbe;
        probe.from = t.peer;
        probe.to = target;
        network_->Send(probe);
        if (!network_->IsOnline(target)) {
          // Repair writes only this member's reference slot; the
          // candidate scan reads other members' paths, which are frozen
          // for the phase.
          int level = static_cast<int>(&lvl - st.levels.data());
          auto cands = PeersUnder(st.path.SiblingAt(level));
          for (int a = 0; a < 16 && !cands.empty(); ++a) {
            net::PeerId cand = cands[rng.UniformU64(cands.size())];
            if (network_->IsOnline(cand) && cand != target) {
              lvl.refs[idx] = cand;
              break;
            }
          }
        }
        break;
      }
      idx -= lvl.refs.size();
    }
  }
}

uint64_t PGridOverlay::FinishMaintenanceRound() {
  uint64_t probes = 0;
  for (const MaintTask& t : maint_tasks_) probes += t.probes;
  maint_tasks_.clear();
  return probes;
}

uint64_t PGridOverlay::RoutingFingerprint() const {
  uint64_t h = 0x7067726964ULL;  // "pgrid"
  for (net::PeerId peer : member_list_) {
    auto it = paths_.find(peer);
    if (it == paths_.end()) continue;
    const NodeState& st = it->second;
    h = Mix64(HashCombine(h, HashCombine(peer, st.path.msb_bits())));
    h = Mix64(HashCombine(h, static_cast<uint64_t>(st.path.length())));
    for (const auto& lvl : st.levels) {
      h = Mix64(HashCombine(h, lvl.refs.size()));
      for (net::PeerId ref : lvl.refs) h = Mix64(HashCombine(h, ref));
    }
  }
  return h;
}

void PGridOverlay::RefreshNode(net::PeerId peer) {
  if (paths_.count(peer)) BuildRefsFor(peer);
}

double PGridOverlay::StaleReferenceFraction() const {
  uint64_t total = 0;
  uint64_t stale = 0;
  for (const auto& [peer, st] : paths_) {
    if (!network_->IsOnline(peer)) continue;
    for (const auto& lvl : st.levels) {
      for (net::PeerId ref : lvl.refs) {
        ++total;
        if (!network_->IsOnline(ref)) ++stale;
      }
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(stale) / static_cast<double>(total);
}

std::string PGridOverlay::CheckInvariants() const {
  // Prefix-freeness: no member's path is a strict prefix of another's
  // (they would both claim the same keys ambiguously) -- except identical
  // paths, which are replicas and allowed.
  for (const auto& [pa, sa] : paths_) {
    for (const auto& [pb, sb] : paths_) {
      if (pa == pb) continue;
      if (sa.path.length() < sb.path.length() &&
          sa.path.IsPrefixOf(sb.path)) {
        std::ostringstream err;
        err << "path of peer " << pa << " (" << sa.path.ToString()
            << ") is a strict prefix of peer " << pb << " ("
            << sb.path.ToString() << ")";
        return err.str();
      }
    }
  }
  // Coverage: probe a sample of key ids; each must have >= 1 responsible.
  for (uint64_t k = 0; k < 64; ++k) {
    uint64_t key_id = KeyToNodeId(k * 0x123456789ULL + 7);
    bool covered = false;
    for (const auto& [peer, st] : paths_) {
      (void)peer;
      if (st.path.IsPrefixOfKey(key_id)) {
        covered = true;
        break;
      }
    }
    if (!covered && !paths_.empty()) {
      return "key space not covered";
    }
  }
  return "";
}

}  // namespace pdht::overlay
