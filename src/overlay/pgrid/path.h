// P-Grid binary trie paths [Aber01].
//
// In P-Grid every peer is associated with a binary string (its "path");
// the peer is responsible for all keys whose binary representation starts
// with that path.  Paths are stored MSB-aligned in a uint64 so prefix
// relations against 64-bit key ids are simple integer operations.

#ifndef PDHT_OVERLAY_PGRID_PATH_H_
#define PDHT_OVERLAY_PGRID_PATH_H_

#include <cstdint>
#include <string>

namespace pdht::overlay {

class TriePath {
 public:
  TriePath() = default;

  /// Builds from the top `len` bits of `msb_bits` (remaining bits cleared).
  TriePath(uint64_t msb_bits, int len);

  /// Parses "0110..." (at most 64 chars of '0'/'1').
  static TriePath FromString(const std::string& s);

  int length() const { return len_; }
  bool empty() const { return len_ == 0; }
  uint64_t msb_bits() const { return bits_; }

  /// Bit i (0-based from the root/MSB); requires i < length().
  int Bit(int i) const;

  /// Path extended by one bit.
  TriePath Child(int bit) const;

  /// First `n` bits of this path (n <= length()).
  TriePath Prefix(int n) const;

  /// Path with bit `i` flipped and truncated to i+1 bits: the "other side"
  /// reference target at trie level i.
  TriePath SiblingAt(int i) const;

  /// True iff this path is a prefix of (or equal to) `other`.
  bool IsPrefixOf(const TriePath& other) const;

  /// True iff this path is a prefix of the 64-bit key id.
  bool IsPrefixOfKey(uint64_t key_id) const;

  /// Number of leading bits shared with `key_id` (capped at length()).
  int CommonPrefixWithKey(uint64_t key_id) const;

  std::string ToString() const;

  bool operator==(const TriePath& o) const {
    return len_ == o.len_ && bits_ == o.bits_;
  }
  /// Lexicographic-by-bits ordering (shorter prefix first on ties).
  bool operator<(const TriePath& o) const {
    if (bits_ != o.bits_) return bits_ < o.bits_;
    return len_ < o.len_;
  }

 private:
  uint64_t bits_ = 0;  // MSB-aligned; bits past len_ are zero.
  int len_ = 0;
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_PGRID_PATH_H_
