// P-Grid trie-structured overlay [Aber01].
//
// The paper's prototype of the selection algorithm was built on P-Grid
// ("We have been implementing a simulator for partial indexing with P-Grid",
// Section 5.2), so we provide it as a second structured-overlay backend
// next to Chord.  Peers carry binary trie paths; a peer is responsible for
// keys prefixed by its path.  Routing tables hold, per path level l,
// references to peers on the *other* side of the trie at that level
// (paths sharing the first l bits and differing at bit l).  A lookup
// resolves the key bit-by-bit, each hop extending the matched prefix by at
// least one bit, giving O(log n) hops -- the same cSIndx regime as Chord
// (design note: the paper's analysis is "generic enough such that it can
// be adapted to suit most other DHT proposals").
//
// Construction is available in two modes:
//  * Balanced assignment (default): paths are assigned by recursive
//    halving -- deterministic, used by the cost experiments.
//  * Exchange-based (BuildByExchanges): random pairwise meetings split and
//    refine paths as in the P-Grid bootstrap protocol; message cost is
//    counted as kExchange.  A test verifies both converge to tries with
//    complete key-space coverage.

#ifndef PDHT_OVERLAY_PGRID_PGRID_H_
#define PDHT_OVERLAY_PGRID_PGRID_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "overlay/pgrid/path.h"
#include "overlay/structured_overlay.h"
#include "util/rng.h"

namespace pdht::overlay {

struct PGridConfig {
  uint32_t refs_per_level = 4;   ///< redundant references per trie level.
  uint32_t max_leaf_peers = 1;   ///< peers sharing one leaf path (replicas).
};

class PGridOverlay : public StructuredOverlay {
 public:
  PGridOverlay(net::Network* network, Rng rng, PGridConfig config = {});

  /// Balanced path assignment + routing table construction (free, like
  /// ChordOverlay::SetMembers).
  void SetMembers(const std::vector<net::PeerId>& members) override;

  /// Exchange-based construction: starts all members at the empty path and
  /// runs random pairwise exchanges until paths stabilize (or the round
  /// budget is exhausted).  Counts kExchange messages.  Returns the number
  /// of exchanges performed.
  uint64_t BuildByExchanges(const std::vector<net::PeerId>& members,
                            uint64_t max_exchanges);

  bool IsMember(net::PeerId peer) const override;
  size_t num_members() const override { return paths_.size(); }
  const std::vector<net::PeerId>& members() const override {
    return member_list_;
  }

  const TriePath& PathOf(net::PeerId peer) const;

  /// All peers whose path is a prefix of the key id (the responsible leaf
  /// group; size max_leaf_peers under balanced assignment).
  std::vector<net::PeerId> ResponsiblePeers(uint64_t key) const;

  /// StructuredOverlay replica group: the leaf group *is* the structural
  /// replica set (already sized by max_leaf_peers), so `count` only caps
  /// it.
  void ResponsiblePeersInto(uint64_t key, uint32_t count,
                            std::vector<net::PeerId>* out) const override;
  using StructuredOverlay::ResponsiblePeers;  // unhide the (key, count) form

  /// First responsible peer (deterministic representative).
  net::PeerId ResponsibleMember(uint64_t key) const override;

  // Routing-engine contract: the candidates at a hop are the references
  // at the first level whose bit differs from the key -- all of them land
  // one trie level deeper, so they share one progress class (route-time
  // PNS picks the cheapest link among them).  No recovery scan: when
  // every reference at the required level is dead the lookup fails
  // (P-Grid would retry via alternative paths; redundant refs make this
  // rare at our churn levels, and the failure is reported).
  bool StartLookup(net::PeerId origin, uint64_t key,
                   net::PeerId* responsible) override;
  bool AtDestination(net::PeerId peer, uint64_t key) const override;
  uint32_t LookupHopLimit() const override;
  void NextHops(const RouteState& state, uint64_t key,
                std::vector<RouteCandidate>* out) override;

  /// Total routing references of `peer` (for maintenance sizing).
  size_t TableSize(net::PeerId peer) const;

  /// Probe-based maintenance round (same env semantics as
  /// ChordMaintenance): probes random references, re-picks dead ones.
  /// Returns probes sent.
  uint64_t RunMaintenanceRound(double env) override;

  /// Sharded maintenance (plan/execute/publish, see StructuredOverlay).
  /// Plan consumes the same fractional probe budgets as the serial round
  /// in member-list order; execute probes and repairs only the owning
  /// member's reference lists, drawing from the caller Rng (repair
  /// candidate scans read only other members' immutable paths, so
  /// distinct tasks are race-free).
  bool has_sharded_maintenance() const override { return true; }
  uint32_t PlanMaintenanceRound(double env) override;
  void ExecuteMaintenanceTask(uint32_t task, Rng& rng) override;
  uint64_t FinishMaintenanceRound() override;

  /// Order-sensitive hash over paths and per-level reference lists of
  /// every member (determinism-test hook).
  uint64_t RoutingFingerprint() const override;

  /// Rejoin refresh, free/piggybacked.
  void OnPeerRejoin(net::PeerId peer) override { RefreshNode(peer); }

  /// Rebuilds a peer's references from current paths (rejoin refresh).
  void RefreshNode(net::PeerId peer);

  /// Empty string when the trie is well-formed (paths prefix-free and
  /// covering: every key id has >= 1 responsible peer). Test-support API.
  std::string CheckInvariants() const override;

  double StaleReferenceFraction() const;

 private:
  struct LevelRefs {
    std::vector<net::PeerId> refs;
  };
  struct NodeState {
    TriePath path;
    std::vector<LevelRefs> levels;  // levels[l]: refs for level l
  };

  void BuildRoutingTables();
  void BuildRefsFor(net::PeerId peer);
  /// Peers whose path starts with prefix (exact prefix match on paths).
  std::vector<net::PeerId> PeersUnder(const TriePath& prefix) const;

  Rng rng_;
  PGridConfig config_;
  std::unordered_map<net::PeerId, NodeState> paths_;
  std::vector<net::PeerId> member_list_;
  std::unordered_map<net::PeerId, double> probe_budget_;

  /// One sharded-maintenance task: all of a member's probes for the
  /// round, frozen at plan time (reference-list sizes don't change
  /// mid-round: repair replaces entries in place).
  struct MaintTask {
    net::PeerId peer = net::kInvalidPeer;
    uint32_t probes = 0;
  };
  std::vector<MaintTask> maint_tasks_;

  /// Per-lookup routing state, one entry per lookup slot (set in
  /// StartLookup; concurrent walks each run under their own
  /// CurrentLookupSlot and only read the shared trie/reference tables).
  struct LookupSlot {
    uint64_t key_id = 0;
  };
  std::vector<LookupSlot> lookup_slots_{1};
  void ResizeLookupSlots(uint32_t n) override { lookup_slots_.resize(n); }
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_PGRID_PGRID_H_
