#include "overlay/pgrid/path.h"

#include <cassert>

#include "util/bits.h"

namespace pdht::overlay {

namespace {
uint64_t MaskTop(int len) {
  if (len <= 0) return 0;
  if (len >= 64) return ~uint64_t{0};
  return ~uint64_t{0} << (64 - len);
}
}  // namespace

TriePath::TriePath(uint64_t msb_bits, int len)
    : bits_(msb_bits & MaskTop(len)), len_(len) {
  assert(len >= 0 && len <= 64);
}

TriePath TriePath::FromString(const std::string& s) {
  assert(s.size() <= 64);
  uint64_t bits = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    assert(s[i] == '0' || s[i] == '1');
    if (s[i] == '1') bits |= uint64_t{1} << (63 - i);
  }
  return TriePath(bits, static_cast<int>(s.size()));
}

int TriePath::Bit(int i) const {
  assert(i >= 0 && i < len_);
  return static_cast<int>((bits_ >> (63 - i)) & 1);
}

TriePath TriePath::Child(int bit) const {
  assert(len_ < 64);
  uint64_t bits = bits_;
  if (bit) bits |= uint64_t{1} << (63 - len_);
  return TriePath(bits, len_ + 1);
}

TriePath TriePath::Prefix(int n) const {
  assert(n >= 0 && n <= len_);
  return TriePath(bits_, n);
}

TriePath TriePath::SiblingAt(int i) const {
  assert(i >= 0 && i < len_);
  uint64_t bits = bits_ ^ (uint64_t{1} << (63 - i));
  return TriePath(bits, i + 1);
}

bool TriePath::IsPrefixOf(const TriePath& other) const {
  if (len_ > other.len_) return false;
  return (other.bits_ & MaskTop(len_)) == bits_;
}

bool TriePath::IsPrefixOfKey(uint64_t key_id) const {
  return (key_id & MaskTop(len_)) == bits_;
}

int TriePath::CommonPrefixWithKey(uint64_t key_id) const {
  int cpl = CommonPrefixLength(bits_, key_id);
  return cpl < len_ ? cpl : len_;
}

std::string TriePath::ToString() const {
  std::string s;
  s.reserve(len_);
  for (int i = 0; i < len_; ++i) s.push_back(Bit(i) ? '1' : '0');
  return s;
}

}  // namespace pdht::overlay
