// Polymorphic seam between the PDHT core and the structured overlays.
//
// The paper's analysis is "generic enough such that it can be adapted to
// suit most other DHT proposals"; this interface is that claim expressed
// in code.  PdhtSystem talks to exactly one StructuredOverlay and never
// names a concrete backend; Chord, P-Grid, CAN and Kademlia implement the
// interface, and a factory registry (MakeOverlay) maps the DhtBackend
// enum -- or its string name -- to a constructed instance.  Adding a new
// overlay is a ~1-file change: implement the interface and register a
// factory; PdhtSystem, the benches, the examples and the parity tests
// enumerate RegisteredBackends() and pick the newcomer up automatically.
//
// Contract notes:
//  * SetMembers is called once per system build with the DHT member
//    subset; construction traffic is free (bootstrap cost is not the
//    object of the paper's model).
//  * Lookup counts every hop attempt on the shared Network (design
//    decision #5: protocols never self-report costs).
//  * RunMaintenanceRound spends env probe messages per routing entry per
//    online member per round (Eq. 8 semantics, fractional budgets carry).
//  * ResponsiblePeers returns the key's replica group, responsible member
//    first.  The default spreads the remaining repl-1 replicas over
//    hash-derived members (successor-consecutive replicas would overflow
//    whole arcs together); overlays with a structural replica group --
//    P-Grid's leaf peers -- override it.
//  * SetPeerRtt (optional, before SetMembers) installs a link-RTT oracle
//    for proximity-aware neighbor selection; without it, selection is
//    RTT-blind and unchanged.

#ifndef PDHT_OVERLAY_STRUCTURED_OVERLAY_H_
#define PDHT_OVERLAY_STRUCTURED_OVERLAY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/strategy.h"
#include "net/network.h"
#include "util/rng.h"

namespace pdht::overlay {

struct LookupResult {
  bool success = false;
  net::PeerId responsible = net::kInvalidPeer;  ///< member owning the key.
  net::PeerId terminus = net::kInvalidPeer;     ///< where routing ended
                                                ///< (owner, or its closest
                                                ///< online stand-in).
  bool responsible_online = false;
  uint32_t hops = 0;          ///< routing hops actually taken.
  uint32_t failed_probes = 0; ///< sends to stale (offline) entries.
  uint64_t messages = 0;      ///< total messages (hops + failures + reply).
};

class StructuredOverlay {
 public:
  /// `network` must outlive the overlay (shared by every backend).
  explicit StructuredOverlay(net::Network* network);
  virtual ~StructuredOverlay() = default;

  /// (Re)builds the overlay over the given member peers (free, see
  /// contract above).
  virtual void SetMembers(const std::vector<net::PeerId>& members) = 0;

  virtual bool IsMember(net::PeerId peer) const = 0;
  virtual size_t num_members() const = 0;

  /// All members.  Order is backend-defined but stable between
  /// SetMembers calls (Chord: sorted by ring id).
  virtual const std::vector<net::PeerId>& members() const = 0;

  /// The member responsible for `key`, kInvalidPeer when empty.
  virtual net::PeerId ResponsibleMember(uint64_t key) const = 0;

  /// Writes the key's replica group (<= count peers, responsible member
  /// first) into `*out`, replacing its contents.  This is the virtual
  /// customization point; taking the caller's buffer keeps the per-query
  /// replica walk allocation-free (PdhtSystem reuses one scratch vector
  /// for every insert/flood/update).
  virtual void ResponsiblePeersInto(uint64_t key, uint32_t count,
                                    std::vector<net::PeerId>* out) const;

  /// Convenience value-returning form of ResponsiblePeersInto.
  std::vector<net::PeerId> ResponsiblePeers(uint64_t key,
                                            uint32_t count) const {
    std::vector<net::PeerId> out;
    ResponsiblePeersInto(key, count, &out);
    return out;
  }

  /// Routes from `origin` (must be a member) toward `key`'s owner,
  /// counting one kDhtLookup per hop attempt.  If the owner is offline
  /// the lookup terminates at its closest online stand-in with
  /// responsible_online = false.
  virtual LookupResult Lookup(net::PeerId origin, uint64_t key) = 0;

  /// Picks a uniformly random *online* member, or kInvalidPeer if none.
  /// Non-member peers "know at least one online peer that is
  /// participating in the DHT" (Section 3.2) and use it as entry point.
  /// Default: 64 uniform draws from members(), then a linear fallback.
  virtual net::PeerId RandomOnlineMember(Rng& rng) const;

  /// One probe-based maintenance round (Eq. 8): env probes per routing
  /// entry per online member, stale entries repaired for free
  /// (piggybacked).  Returns probes sent.
  virtual uint64_t RunMaintenanceRound(double env) = 0;

  /// A member came back online after churn downtime: refresh its routing
  /// state (free, piggybacked).  Backends with static routing state (CAN
  /// zones) keep the no-op default.
  virtual void OnPeerRejoin(net::PeerId peer) { (void)peer; }

  /// Optional link-RTT oracle (milliseconds, symmetric), e.g. a latency
  /// DeliveryModel's RttMs.  Overlays with freedom in neighbor choice use
  /// it for proximity-aware neighbor selection -- Kademlia prefers
  /// low-RTT contacts among the equal-distance candidates of a k-bucket.
  /// Install *before* SetMembers (routing tables are built there);
  /// backends without selection freedom simply never consult it.  When
  /// unset, neighbor selection is RTT-blind and byte-identical to the
  /// pre-hook behaviour.
  using PeerRttFn = std::function<double(net::PeerId, net::PeerId)>;
  void SetPeerRtt(PeerRttFn rtt) { peer_rtt_ = std::move(rtt); }
  bool has_peer_rtt() const { return static_cast<bool>(peer_rtt_); }

  /// Structural self-check; empty string when consistent.  Test support.
  virtual std::string CheckInvariants() const { return ""; }

 protected:
  /// The installed oracle's RTT for a link; only meaningful when
  /// has_peer_rtt().  Not hot-path: overlays call it at table build /
  /// repair time, never per message.
  double PeerRtt(net::PeerId a, net::PeerId b) const {
    return peer_rtt_(a, b);
  }

  net::Network* network_;  ///< not owned
  PeerRttFn peer_rtt_;     ///< null = RTT-blind neighbor selection
};

/// Construction-time knobs shared by all backends.  Backends read what
/// they need and ignore the rest.  (The maintenance probe rate env is
/// deliberately *not* here: it flows per-call through
/// RunMaintenanceRound so it can be swept at runtime.)
struct OverlayParams {
  /// Replication factor: sizes structural replica groups (P-Grid leaf
  /// population).
  uint64_t repl = 1;
  /// Total peer population (members are a subset); used only to clamp
  /// group sizes.
  uint64_t num_peers = 0;
  /// Kademlia's k (contacts per bucket); ignored by other backends.
  uint32_t kademlia_bucket_size = 8;
};

using OverlayFactory = std::unique_ptr<StructuredOverlay> (*)(
    net::Network* network, const OverlayParams& params, Rng rng);

/// Registers a factory for `backend`; returns false (and keeps the
/// existing entry) when the backend is already registered.  The four
/// built-ins are pre-registered; call this to plug in external backends.
bool RegisterOverlay(core::DhtBackend backend, OverlayFactory factory);

bool IsRegisteredBackend(core::DhtBackend backend);

/// All registered backends in enum order -- the benches, examples and
/// parity tests enumerate this instead of hard-coding lists.
std::vector<core::DhtBackend> RegisteredBackends();

/// Constructs the backend, or nullptr when none is registered.
std::unique_ptr<StructuredOverlay> MakeOverlay(core::DhtBackend backend,
                                               net::Network* network,
                                               const OverlayParams& params,
                                               Rng rng);

/// String-keyed variant ("chord", "pgrid", "can", "kademlia"; see
/// core::ParseDhtBackend); nullptr on unknown name.
std::unique_ptr<StructuredOverlay> MakeOverlay(const std::string& name,
                                               net::Network* network,
                                               const OverlayParams& params,
                                               Rng rng);

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_STRUCTURED_OVERLAY_H_
