// Polymorphic seam between the PDHT core and the structured overlays.
//
// The paper's analysis is "generic enough such that it can be adapted to
// suit most other DHT proposals"; this interface is that claim expressed
// in code.  PdhtSystem talks to exactly one StructuredOverlay and never
// names a concrete backend; Chord, P-Grid, CAN and Kademlia implement the
// interface, and a factory registry (MakeOverlay) maps the DhtBackend
// enum -- or its string name -- to a constructed instance.  Adding a new
// overlay is a ~1-file change: implement the interface and register a
// factory; PdhtSystem, the benches, the examples and the parity tests
// enumerate RegisteredBackends() and pick the newcomer up automatically.
//
// Contract notes:
//  * SetMembers is called once per system build with the DHT member
//    subset; construction traffic is free (bootstrap cost is not the
//    object of the paper's model).
//  * Lookup is NOT backend code: backends implement the candidate-
//    generator contract below (StartLookup/AtDestination/NextHops/...)
//    and the shared overlay::RoutingDriver owns the hop-by-hop walk --
//    probe accounting, failed-probe timeout costing and route-time
//    proximity selection live there once, for every backend
//    (routing_driver.h).  Lookup() survives as a thin wrapper so call
//    sites are unchanged.
//  * Every hop attempt is one kDhtLookup on the shared Network (design
//    decision #5: protocols never self-report costs).
//  * RunMaintenanceRound spends env probe messages per routing entry per
//    online member per round (Eq. 8 semantics, fractional budgets carry).
//  * ResponsiblePeers returns the key's replica group, responsible member
//    first.  The default spreads the remaining repl-1 replicas over
//    hash-derived members (successor-consecutive replicas would overflow
//    whole arcs together); overlays with a structural replica group --
//    P-Grid's leaf peers -- override it.
//  * Replica terminals: under RoutingPolicy::replica_route the driver
//    treats EVERY member of the key's replica group as a valid terminal
//    -- a hop that is about to end the walk (a candidate with
//    terminal = true, or the responsible member leading the candidate
//    list) is rerouted to the cheapest live replica, and that advance
//    ends routing exactly like a backend-emitted terminal candidate.
//    Backends therefore must keep ResponsiblePeersInto consistent with
//    storage placement (PdhtSystem replicates inserts to the same
//    group), and must tolerate a walk terminating at a group member
//    other than ResponsibleMember(key).  ResponsiblePeersInto is also
//    called from concurrent lookup slots, so overrides must be
//    read-only over state frozen during parallel phases.
//  * SetPeerRtt (optional, before SetMembers) installs a link-RTT oracle
//    for proximity-aware neighbor selection at *table build* time;
//    route-time proximity selection is a RoutingPolicy knob
//    (SetRoutingPolicy) and needs no backend support.

#ifndef PDHT_OVERLAY_STRUCTURED_OVERLAY_H_
#define PDHT_OVERLAY_STRUCTURED_OVERLAY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/strategy.h"
#include "net/network.h"
#include "overlay/routing_driver.h"
#include "util/rng.h"

namespace pdht::overlay {

/// Outcome of one routed lookup.  The accounting contract is uniform
/// across backends (assembled by RoutingDriver, not by backend code):
///
///  * hops          -- successful routing advances: edges of the walk
///                     actually traversed.  Probes that found their
///                     target offline are NOT hops.
///  * failed_probes -- kDhtLookup sends answered by discovering the
///                     target offline (stale-entry cost; these messages
///                     hit the wire and are counted on the Network).
///  * messages      -- every message of this lookup: all probes
///                     (successful and failed) plus the final
///                     kDhtResponse to the originator when the lookup
///                     succeeds away from home.  With sequential routing
///                     (LookupParallelism() == 1, the default)
///                     messages == hops + failed_probes
///                                 + (success && terminus != origin).
///                     An alpha-concurrent walk adds wasted parallel
///                     probes on top, so only >= holds there.
///  * responsible   -- the member owning the key (kInvalidPeer only when
///                     the overlay is empty).
///  * responsible_online -- IsOnline(responsible) at lookup end, on every
///                     path (including dead-end failures).
///  * terminus      -- where routing ended: the owner, its closest online
///                     stand-in, or the peer where the walk died.
///  * success       -- the walk ended at an online peer that can serve
///                     the lookup: the destination, a terminal recovery
///                     step, or (for backends whose walk tolerates
///                     stand-ins) the closest online member.  Candidate
///                     exhaustion is always a failure.
///  * failovers     -- dead replicas skipped by latency-aware replica
///                     failover (RoutingPolicy::replica_route; always 0
///                     without it).  Failover probes are also counted
///                     under failed_probes and messages, so the
///                     sequential messages identity above gains the
///                     replica batches' wasted parallel probes.
///  * hop_rtt_ms    -- per-hop RTT trace: the oracle RTT of the link
///                     each advance traversed, keyed by hop index
///                     (first kMaxHopRtt hops; hop_rtt_n entries are
///                     populated).  Recorded only when the policy has
///                     an RTT oracle installed; empty on blind walks.
struct LookupResult {
  /// Per-hop RTT trace capacity; deeper walks drop the tail.
  static constexpr uint32_t kMaxHopRtt = 8;

  bool success = false;
  net::PeerId responsible = net::kInvalidPeer;  ///< member owning the key.
  net::PeerId terminus = net::kInvalidPeer;     ///< where routing ended.
  bool responsible_online = false;
  uint32_t hops = 0;          ///< successful routing advances.
  uint32_t failed_probes = 0; ///< sends to stale (offline) entries.
  uint64_t messages = 0;      ///< probes + failures + reply.
  uint32_t failovers = 0;     ///< dead replicas skipped (replica_route).
  uint32_t hop_rtt_n = 0;     ///< populated hop_rtt_ms entries.
  float hop_rtt_ms[kMaxHopRtt] = {};  ///< RTT of hop k's link, ms.
};

class StructuredOverlay {
 public:
  /// `network` must outlive the overlay (shared by every backend).
  explicit StructuredOverlay(net::Network* network);
  virtual ~StructuredOverlay() = default;

  /// (Re)builds the overlay over the given member peers (free, see
  /// contract above).
  virtual void SetMembers(const std::vector<net::PeerId>& members) = 0;

  virtual bool IsMember(net::PeerId peer) const = 0;
  virtual size_t num_members() const = 0;

  /// All members.  Order is backend-defined but stable between
  /// SetMembers calls (Chord: sorted by ring id).
  virtual const std::vector<net::PeerId>& members() const = 0;

  /// The member responsible for `key`, kInvalidPeer when empty.
  virtual net::PeerId ResponsibleMember(uint64_t key) const = 0;

  /// Writes the key's replica group (<= count peers, responsible member
  /// first) into `*out`, replacing its contents.  This is the virtual
  /// customization point; taking the caller's buffer keeps the per-query
  /// replica walk allocation-free (PdhtSystem reuses one scratch vector
  /// for every insert/flood/update).
  virtual void ResponsiblePeersInto(uint64_t key, uint32_t count,
                                    std::vector<net::PeerId>* out) const;

  /// Convenience value-returning form of ResponsiblePeersInto.
  std::vector<net::PeerId> ResponsiblePeers(uint64_t key,
                                            uint32_t count) const {
    std::vector<net::PeerId> out;
    ResponsiblePeersInto(key, count, &out);
    return out;
  }

  /// Routes from `origin` (must be a member) toward `key`'s owner via the
  /// shared RoutingDriver; see the LookupResult contract above.  If the
  /// owner is offline the lookup terminates at its closest online
  /// stand-in with responsible_online = false.
  LookupResult Lookup(net::PeerId origin, uint64_t key);

  // --- Routing-engine contract (implemented by backends) ---------------
  //
  // The driver walks: StartLookup once, then per hop AtDestination ->
  // NextHops (primary candidates, probe order) -> FallbackHop (lazy
  // recovery scan) -> OnAdvance.  Generators may keep per-lookup state
  // set up in StartLookup; the driver is strictly sequential per overlay
  // instance.

  /// Prepares per-lookup routing state and resolves the key's owner into
  /// `*responsible`.  Returns false when the overlay is empty (the lookup
  /// fails with an all-default result).  `origin` must be a member.
  virtual bool StartLookup(net::PeerId origin, uint64_t key,
                           net::PeerId* responsible) = 0;

  /// True when the walk standing at `peer` has reached the key's
  /// destination (owner / containing zone / responsible leaf group).
  virtual bool AtDestination(net::PeerId peer, uint64_t key) const = 0;

  /// Hop budget for one lookup (walks advance every hop; the budget only
  /// bounds churn detours).
  virtual uint32_t LookupHopLimit() const = 0;

  /// Appends, in probe order, the candidates the walk at `state.cur`
  /// should try this hop.  `out` arrives cleared; emit nothing when the
  /// backend has no primary candidates (the driver then consults
  /// FallbackHop).
  virtual void NextHops(const RouteState& state, uint64_t key,
                        std::vector<RouteCandidate>* out) = 0;

  /// Optional incremental form of NextHops for the blind fast path:
  /// produces the k-th primary candidate (k = 0, 1, ... strictly
  /// increasing within one hop; k restarts at 0 on the next hop),
  /// returning false when exhausted.  Backends whose probe order is
  /// naturally computed one candidate at a time (Chord's skip-masked
  /// closest-preceding walk) override this and has_incremental_primary
  /// so blind lookups never materialize and sort a candidate list; the
  /// driver falls back to NextHops whenever a policy needs the full
  /// list (route-time PNS) or probes run in parallel.  Must produce the
  /// same candidates in the same order as NextHops.
  virtual bool PrimaryHop(const RouteState& state, uint64_t key, uint32_t k,
                          RouteCandidate* out) {
    (void)state;
    (void)key;
    (void)k;
    (void)out;
    return false;
  }
  virtual bool has_incremental_primary() const { return false; }

  /// Produces the k-th candidate (k = 0, 1, ... strictly increasing
  /// within one stalled hop) of the backend's recovery scan; returns
  /// false when the scan is exhausted.  Emitting `state.cur` itself ends
  /// routing there without a message (closest-online stand-in).  Default:
  /// no recovery scan -- a stalled hop fails the lookup.
  virtual bool FallbackHop(const RouteState& state, uint64_t key,
                           uint32_t k, RouteCandidate* out) {
    (void)state;
    (void)key;
    (void)k;
    (void)out;
    return false;
  }

  /// Notification that the walk advanced to `peer` (visited-set upkeep;
  /// CAN marks detour targets).
  virtual void OnAdvance(net::PeerId peer) { (void)peer; }

  /// Whether a hop-limit exit may still succeed from wherever the walk
  /// stands (Chord/Kademlia treat it as a stand-in; CAN/P-Grid fail).
  virtual bool LenientHopLimit() const { return false; }

  /// Expected serialized one-way latency, in milliseconds, per unit of
  /// RouteCandidate::progress.  Returning > 0 opts the backend into the
  /// driver's *weighted* route-time PNS: candidates are probed in order
  /// of (one-way RTT + weight * progress), which deviates from the
  /// blind best-progress order only when the link saving exceeds the
  /// expected cost of the extra path (Chord, Kademlia).  0 (default)
  /// keeps the equal-progress-group reorder, right for backends whose
  /// candidates form genuinely interchangeable classes (P-Grid levels).
  /// Consulted only when RoutingPolicy::proximity is on.
  virtual double ProgressWeightMs() const { return 0.0; }

  /// Bounded-parallelism request: probe up to this many primary
  /// candidates per round (Kademlia's alpha-concurrent iterative lookup).
  /// 1 (the default) is the sequential walk every backend reproduces
  /// bit-for-bit.
  virtual uint32_t LookupParallelism() const { return 1; }

  /// Installs the driver's cross-backend routing policies (route-time
  /// PNS, timeout costing).  Call any time; takes effect on the next
  /// Lookup.
  void SetRoutingPolicy(RoutingPolicy policy) {
    driver_.set_policy(std::move(policy));
  }
  const RoutingPolicy& routing_policy() const { return driver_.policy(); }

  /// Provisions `n` lookup slots so up to `n` concurrent Lookup calls --
  /// each on its own thread with a distinct CurrentLookupSlot() -- can
  /// share this overlay instance.  Concurrent lookups must only *read*
  /// routing tables: SetMembers/maintenance/rejoin repairs stay serial
  /// phases.  Default is 1 slot; calling mid-lookup is undefined.
  void SetLookupSlots(uint32_t n) {
    driver_.SetSlots(n);
    ResizeLookupSlots(n == 0 ? 1 : n);
  }
  uint32_t lookup_slots() const { return driver_.num_slots(); }

  /// Picks a uniformly random *online* member, or kInvalidPeer if none.
  /// Non-member peers "know at least one online peer that is
  /// participating in the DHT" (Section 3.2) and use it as entry point.
  /// Default: 64 uniform draws from members(), then a linear fallback.
  virtual net::PeerId RandomOnlineMember(Rng& rng) const;

  /// One probe-based maintenance round (Eq. 8): env probes per routing
  /// entry per online member, stale entries repaired for free
  /// (piggybacked).  Returns probes sent.
  virtual uint64_t RunMaintenanceRound(double env) = 0;

  // --- Sharded maintenance (optional backend opt-in) --------------------
  //
  // The plan/execute/publish split of RunMaintenanceRound, for the
  // sharded round engine (docs/architecture.md).  A backend that opts in
  // (has_sharded_maintenance() true) promises:
  //
  //  * PlanMaintenanceRound (serial) consumes the fractional probe
  //    budgets in canonical member order and returns a task count N; the
  //    task list is a pure function of (budgets, tables, online set).
  //  * ExecuteMaintenanceTask (called concurrently for distinct task
  //    indices in [0, N), any order, any thread) draws only from the
  //    caller-provided Rng, writes only the owning member's routing
  //    table, and reads shared state (membership, other tables' sizes,
  //    Network::IsOnline) that the engine guarantees frozen for the
  //    phase.  Probe sends go through the Network (the engine binds a
  //    counter lane around each task).
  //  * FinishMaintenanceRound (serial) merges per-task stats in task
  //    order and returns the round's probes sent.
  //
  // Backends that keep the default stay on the serial
  // RunMaintenanceRound -- the engine checks has_sharded_maintenance()
  // and falls back, so opting in is never required for correctness.
  virtual bool has_sharded_maintenance() const { return false; }
  virtual uint32_t PlanMaintenanceRound(double env) {
    (void)env;
    return 0;
  }
  virtual void ExecuteMaintenanceTask(uint32_t task, Rng& rng) {
    (void)task;
    (void)rng;
  }
  virtual uint64_t FinishMaintenanceRound() { return 0; }

  /// A member came back online after churn downtime: refresh its routing
  /// state (free, piggybacked).  Backends with static routing state (CAN
  /// zones) keep the no-op default.
  virtual void OnPeerRejoin(net::PeerId peer) { (void)peer; }

  /// Sharded-rejoin opt-in: RejoinNode(peer, rng) must rebuild exactly
  /// the named peer's routing state, drawing randomness only from `rng`
  /// and reading only shared state that is frozen while the engine's
  /// churn phase rebuilds distinct peers concurrently.  Backends with a
  /// shared-Rng rebuild (Kademlia's bucket shuffle) opt in by routing
  /// the draw through the parameter; the default keeps the serial
  /// OnPeerRejoin path.
  virtual bool has_sharded_rejoin() const { return false; }
  virtual void RejoinNode(net::PeerId peer, Rng& rng) {
    (void)rng;
    OnPeerRejoin(peer);
  }

  /// Order-sensitive hash of every member's routing table (entry order
  /// included), for bit-identity assertions across thread/shard counts
  /// (integration/sharded_determinism_test).  0 for backends without
  /// mutable routing state.
  virtual uint64_t RoutingFingerprint() const { return 0; }

  /// Optional link-RTT oracle (milliseconds, symmetric), e.g. a latency
  /// DeliveryModel's RttMs.  Overlays with freedom in neighbor choice use
  /// it for proximity-aware neighbor selection -- Kademlia prefers
  /// low-RTT contacts among the equal-distance candidates of a k-bucket.
  /// Install *before* SetMembers (routing tables are built there);
  /// backends without selection freedom simply never consult it.  When
  /// unset, neighbor selection is RTT-blind and unchanged.
  using PeerRttFn = std::function<double(net::PeerId, net::PeerId)>;
  void SetPeerRtt(PeerRttFn rtt) { peer_rtt_ = std::move(rtt); }
  bool has_peer_rtt() const { return static_cast<bool>(peer_rtt_); }

  /// Structural self-check; empty string when consistent.  Test support.
  virtual std::string CheckInvariants() const { return ""; }

 protected:
  /// The installed oracle's RTT for a link; only meaningful when
  /// has_peer_rtt().  Not hot-path: overlays call it at table build /
  /// repair time, never per message.
  double PeerRtt(net::PeerId a, net::PeerId b) const {
    return peer_rtt_(a, b);
  }

  /// Backend hook for SetLookupSlots: size the backend's per-lookup state
  /// array to `n` (>= 1) entries.  Default for backends with no
  /// StartLookup-scoped state.
  virtual void ResizeLookupSlots(uint32_t n) { (void)n; }

  net::Network* network_;  ///< not owned
  PeerRttFn peer_rtt_;     ///< null = RTT-blind neighbor selection

 private:
  RoutingDriver driver_;
};

/// Construction-time knobs shared by all backends.  Backends read what
/// they need and ignore the rest.  (The maintenance probe rate env is
/// deliberately *not* here: it flows per-call through
/// RunMaintenanceRound so it can be swept at runtime.)
struct OverlayParams {
  /// Replication factor: sizes structural replica groups (P-Grid leaf
  /// population).
  uint64_t repl = 1;
  /// Total peer population (members are a subset); used only to clamp
  /// group sizes.
  uint64_t num_peers = 0;
  /// Kademlia's k (contacts per bucket); ignored by other backends.
  uint32_t kademlia_bucket_size = 8;
  /// Kademlia's alpha: primary candidates probed per hop round by the
  /// routing driver.  1 = the sequential pre-refactor walk (bit-for-bit);
  /// ignored by other backends.
  uint32_t kademlia_alpha = 1;
};

using OverlayFactory = std::unique_ptr<StructuredOverlay> (*)(
    net::Network* network, const OverlayParams& params, Rng rng);

/// Registers a factory for `backend`; returns false (and keeps the
/// existing entry) when the backend is already registered.  The four
/// built-ins are pre-registered; call this to plug in external backends.
bool RegisterOverlay(core::DhtBackend backend, OverlayFactory factory);

bool IsRegisteredBackend(core::DhtBackend backend);

/// All registered backends in enum order -- the benches, examples and
/// parity tests enumerate this instead of hard-coding lists.
std::vector<core::DhtBackend> RegisteredBackends();

/// Constructs the backend, or nullptr when none is registered.
std::unique_ptr<StructuredOverlay> MakeOverlay(core::DhtBackend backend,
                                               net::Network* network,
                                               const OverlayParams& params,
                                               Rng rng);

/// String-keyed variant ("chord", "pgrid", "can", "kademlia"; see
/// core::ParseDhtBackend); nullptr on unknown name.
std::unique_ptr<StructuredOverlay> MakeOverlay(const std::string& name,
                                               net::Network* network,
                                               const OverlayParams& params,
                                               Rng rng);

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_STRUCTURED_OVERLAY_H_
