// Replica subnetwork membership and per-replica state.
//
// "The replicas in the index maintain an unstructured replica subnetwork
// among each other.  When updating a key, it is inserted at one responsible
// peer in the index at the cost of searching the index (cSIndx) and then
// gossiped to the other responsible peers in the subnetwork of replicas"
// (Section 3.3.2, following [DaHa03]).
//
// A ReplicaGroup tracks the replica peers of one key, each replica's
// version (the newest update it has seen), and the subnetwork topology (a
// random connected graph among the replicas).  GossipProtocol (gossip.h)
// spreads updates over it.

#ifndef PDHT_OVERLAY_REPLICA_REPLICA_GROUP_H_
#define PDHT_OVERLAY_REPLICA_REPLICA_GROUP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "util/rng.h"

namespace pdht::overlay {

class ReplicaGroup {
 public:
  /// Forms a group over `members` with a random subnetwork of average
  /// degree `avg_degree` (clamped to the group size).
  ReplicaGroup(uint64_t key, std::vector<net::PeerId> members,
               double avg_degree, Rng* rng);

  uint64_t key() const { return key_; }
  const std::vector<net::PeerId>& members() const { return members_; }
  bool Contains(net::PeerId peer) const;

  const std::vector<net::PeerId>& NeighborsOf(net::PeerId peer) const;

  /// Version bookkeeping: the group-wide latest version and each replica's
  /// locally known version.
  uint64_t latest_version() const { return latest_version_; }
  uint64_t VersionAt(net::PeerId peer) const;
  void SetVersionAt(net::PeerId peer, uint64_t version);
  /// Bumps the group-wide version (a new update was produced) and installs
  /// it at `at` (the insertion point).  Returns the new version.
  uint64_t ProduceUpdate(net::PeerId at);

  /// Fraction of replicas whose version equals latest_version().
  double ConsistentFraction() const;
  /// Fraction among currently-online replicas only.
  double ConsistentFractionOnline(const net::Network& net) const;

 private:
  uint64_t key_;
  std::vector<net::PeerId> members_;
  std::unordered_map<net::PeerId, std::vector<net::PeerId>> adj_;
  std::unordered_map<net::PeerId, uint64_t> version_;
  uint64_t latest_version_ = 0;
  std::vector<net::PeerId> empty_;
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_REPLICA_REPLICA_GROUP_H_
