#include "overlay/replica/gossip.h"

#include <cassert>
#include <deque>
#include <unordered_set>

namespace pdht::overlay {

GossipProtocol::GossipProtocol(net::Network* network) : network_(network) {
  assert(network != nullptr);
}

GossipResult GossipProtocol::PushUpdate(ReplicaGroup* group,
                                        net::PeerId origin,
                                        uint64_t version) {
  GossipResult result;
  if (!network_->IsOnline(origin) || !group->Contains(origin)) return result;
  group->SetVersionAt(origin, version);
  std::unordered_set<net::PeerId> informed{origin};
  struct Hop {
    net::PeerId peer;
    net::PeerId from;
  };
  std::deque<Hop> frontier{{origin, net::kInvalidPeer}};
  result.replicas_reached = 1;
  while (!frontier.empty()) {
    Hop h = frontier.front();
    frontier.pop_front();
    for (net::PeerId nbr : group->NeighborsOf(h.peer)) {
      if (nbr == h.from) continue;  // rumors are not returned to the sender
      if (!network_->IsOnline(nbr)) continue;  // will pull on rejoin
      net::Message m;
      m.type = net::MessageType::kReplicaPush;
      m.from = h.peer;
      m.to = nbr;
      m.key = group->key();
      m.tag = version;
      network_->Send(m);
      ++result.messages;
      if (informed.insert(nbr).second) {
        group->SetVersionAt(nbr, version);
        ++result.replicas_reached;
        frontier.push_back({nbr, h.peer});
      }
      // Duplicate transmissions to already-informed replicas are counted
      // but not re-forwarded: that is the dup2 overhead of flooding the
      // replica subnetwork.
    }
  }
  return result;
}

GossipResult GossipProtocol::PullOnRejoin(ReplicaGroup* group,
                                          net::PeerId peer) {
  GossipResult result;
  if (!group->Contains(peer)) return result;
  for (net::PeerId nbr : group->NeighborsOf(peer)) {
    if (!network_->IsOnline(nbr)) continue;
    net::Message pull;
    pull.type = net::MessageType::kReplicaPull;
    pull.from = peer;
    pull.to = nbr;
    pull.key = group->key();
    network_->Send(pull);
    ++result.messages;
    // Response piggybacks the newest version the neighbor knows.
    net::Message resp;
    resp.type = net::MessageType::kReplicaPull;
    resp.from = nbr;
    resp.to = peer;
    resp.key = group->key();
    resp.tag = group->VersionAt(nbr);
    network_->Send(resp);
    ++result.messages;
    group->SetVersionAt(peer, group->VersionAt(nbr));
    ++result.replicas_reached;
    break;
  }
  return result;
}

ReplicaQueryResult GossipProtocol::FloodQuery(
    const ReplicaGroup& group, net::PeerId origin,
    const std::function<bool(net::PeerId)>& has_key) {
  ReplicaQueryResult result;
  if (!network_->IsOnline(origin)) return result;
  if (has_key(origin)) {
    result.found = true;
    result.found_at = origin;
    return result;
  }
  std::unordered_set<net::PeerId> seen{origin};
  struct Hop {
    net::PeerId peer;
    net::PeerId from;
  };
  std::deque<Hop> frontier{{origin, net::kInvalidPeer}};
  while (!frontier.empty()) {
    Hop h = frontier.front();
    frontier.pop_front();
    for (net::PeerId nbr : group.NeighborsOf(h.peer)) {
      if (nbr == h.from) continue;
      net::Message m;
      m.type = net::MessageType::kReplicaFlood;
      m.from = h.peer;
      m.to = nbr;
      m.key = group.key();
      bool delivered = network_->Send(m);
      ++result.messages;
      if (!delivered || !seen.insert(nbr).second) continue;
      if (has_key(nbr)) {
        result.found = true;
        result.found_at = nbr;
        // Flood continues (no cancellation); the remaining wavefront is
        // genuine traffic, like PushUpdate's.
      }
      frontier.push_back({nbr, h.peer});
    }
  }
  return result;
}

}  // namespace pdht::overlay
