#include "overlay/replica/replica_group.h"

#include <algorithm>
#include <cassert>

namespace pdht::overlay {

ReplicaGroup::ReplicaGroup(uint64_t key, std::vector<net::PeerId> members,
                           double avg_degree, Rng* rng)
    : key_(key), members_(std::move(members)) {
  assert(!members_.empty());
  for (net::PeerId p : members_) {
    version_[p] = 0;
    adj_[p];  // ensure entry
  }
  if (members_.size() == 1) return;
  // Random connected subnetwork: spanning tree + extra edges, mirroring
  // RandomGraph but over the member list (ids are sparse PeerIds).
  std::vector<net::PeerId> shuffled = members_;
  rng->Shuffle(shuffled.data(), shuffled.size());
  auto add_edge = [&](net::PeerId a, net::PeerId b) {
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  };
  uint64_t edges = 0;
  for (size_t i = 1; i < shuffled.size(); ++i) {
    add_edge(shuffled[i], shuffled[rng->UniformU64(i)]);
    ++edges;
  }
  uint64_t target = static_cast<uint64_t>(
      static_cast<double>(members_.size()) *
      std::min(avg_degree, static_cast<double>(members_.size() - 1)) / 2.0);
  uint64_t attempts = 0;
  while (edges < target && attempts < target * 20 + 64) {
    ++attempts;
    net::PeerId a = members_[rng->UniformU64(members_.size())];
    net::PeerId b = members_[rng->UniformU64(members_.size())];
    if (a == b) continue;
    const auto& na = adj_[a];
    if (std::find(na.begin(), na.end(), b) != na.end()) continue;
    add_edge(a, b);
    ++edges;
  }
}

bool ReplicaGroup::Contains(net::PeerId peer) const {
  return version_.count(peer) > 0;
}

const std::vector<net::PeerId>& ReplicaGroup::NeighborsOf(
    net::PeerId peer) const {
  auto it = adj_.find(peer);
  return it == adj_.end() ? empty_ : it->second;
}

uint64_t ReplicaGroup::VersionAt(net::PeerId peer) const {
  auto it = version_.find(peer);
  return it == version_.end() ? 0 : it->second;
}

void ReplicaGroup::SetVersionAt(net::PeerId peer, uint64_t version) {
  auto it = version_.find(peer);
  if (it != version_.end() && version > it->second) it->second = version;
}

uint64_t ReplicaGroup::ProduceUpdate(net::PeerId at) {
  ++latest_version_;
  SetVersionAt(at, latest_version_);
  return latest_version_;
}

double ReplicaGroup::ConsistentFraction() const {
  if (members_.empty()) return 1.0;
  uint64_t ok = 0;
  for (net::PeerId p : members_) {
    if (VersionAt(p) == latest_version_) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(members_.size());
}

double ReplicaGroup::ConsistentFractionOnline(const net::Network& net) const {
  uint64_t online = 0;
  uint64_t ok = 0;
  for (net::PeerId p : members_) {
    if (!net.IsOnline(p)) continue;
    ++online;
    if (VersionAt(p) == latest_version_) ++ok;
  }
  if (online == 0) return 1.0;
  return static_cast<double>(ok) / static_cast<double>(online);
}

}  // namespace pdht::overlay
