// Hybrid push/pull rumor spreading over a replica subnetwork [DaHa03].
//
// "Peers that are offline and go online again pull for missed updates.  We
// assume a message duplication factor of dup2 for flooding the replica
// subnetwork" (Section 3.3.2).  Two operations:
//
//  * PushUpdate: after an update is installed at one replica, the rumor is
//    flooded over the subnetwork (online replicas forward to all
//    neighbors; duplicate receipts are the dup2 overhead).  Expected cost
//    ~ repl * dup2 messages (Eq. 9's second term), which the ablation
//    bench verifies.
//  * PullOnRejoin: a replica that comes back online asks one online
//    neighbor for missed updates (one pull + one response message).
//
//  * FloodQuery: the Section-5 algorithm floods the replica subnetwork on
//    index lookups because TTL purging leaves replicas unsynchronized
//    (cSIndx2 = cSIndx + repl*dup2, Eq. 16).  Returns whether any online
//    replica had the key according to the supplied predicate.

#ifndef PDHT_OVERLAY_REPLICA_GOSSIP_H_
#define PDHT_OVERLAY_REPLICA_GOSSIP_H_

#include <cstdint>
#include <functional>

#include "net/network.h"
#include "overlay/replica/replica_group.h"

namespace pdht::overlay {

struct GossipResult {
  uint64_t messages = 0;
  uint32_t replicas_reached = 0;  ///< online replicas that saw the rumor.
};

struct ReplicaQueryResult {
  bool found = false;
  net::PeerId found_at = net::kInvalidPeer;
  uint64_t messages = 0;
};

class GossipProtocol {
 public:
  explicit GossipProtocol(net::Network* network);

  /// Floods `version` from `origin` across the group's subnetwork.
  /// Every transmission (including duplicates to already-informed
  /// replicas) is one kReplicaPush message.  Offline replicas are skipped
  /// by their neighbors (link-level detection, no wire cost) -- they catch
  /// up via PullOnRejoin.
  GossipResult PushUpdate(ReplicaGroup* group, net::PeerId origin,
                          uint64_t version);

  /// One pull request to the first online neighbor plus one response;
  /// installs the group's latest version at `peer`.
  GossipResult PullOnRejoin(ReplicaGroup* group, net::PeerId peer);

  /// Floods a query over the subnetwork; `has_key(replica)` decides hits.
  ReplicaQueryResult FloodQuery(
      const ReplicaGroup& group, net::PeerId origin,
      const std::function<bool(net::PeerId)>& has_key);

 private:
  net::Network* network_;
};

}  // namespace pdht::overlay

#endif  // PDHT_OVERLAY_REPLICA_GOSSIP_H_
